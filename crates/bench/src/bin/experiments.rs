//! The experiments harness: regenerates every table/figure of
//! `EXPERIMENTS.md` (E1–E12), each operationalising a claim of the
//! paper. Run all with `cargo run --release -p hq-bench --bin
//! experiments`, or one with `--exp e5`.

use hq_arith::Rational;
use hq_bench::{bsm_workload, chain_tid, render_table, shapley_workload, star_tid, time_ms};
use hq_db::generate::{planted_biclique, random_graph, rng};
use hq_db::{db_from_ints, Database, Interner, Tuple};
use hq_monoid::laws::{annihilation_counterexample, check_laws, distributivity_counterexample};
use hq_monoid::{
    BagMaxMonoid, BoolMonoid, CountMonoid, ExactProbMonoid, ProbMonoid, SatCountMonoid,
    TropicalMinMonoid, TwoMonoid,
};
use hq_query::gen::{random_hierarchical, random_query};
use hq_query::{example_query, is_hierarchical, plan, q_non_hierarchical, Query};
use hq_unify::{bsm, pqe, shapley};
use rand::Rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1).cloned())
        .map(|s| s.to_lowercase());
    type Experiment = (&'static str, &'static str, fn() -> String);
    let experiments: Vec<Experiment> = vec![
        (
            "e1",
            "Figure 1 worked example (BSM optimum = 4 at θ=2)",
            e1 as fn() -> String,
        ),
        (
            "e2",
            "Elimination procedure on Examples 5.2-5.4 + random agreement",
            e2,
        ),
        ("e3", "PQE linear scaling (Theorem 5.8)", e3),
        (
            "e4",
            "PQE dichotomy: unified vs possible worlds (Theorem 5.8)",
            e4,
        ),
        ("e5", "BSM scaling O((|D|+|Dr|)·|Dr|^2) (Theorem 5.11)", e5),
        ("e6", "BSM dichotomy: unified vs subset enumeration", e6),
        (
            "e7",
            "Shapley scaling O((|Dx|+|Dn|)·|Dn|^2) (Theorem 5.16)",
            e7,
        ),
        (
            "e8",
            "Shapley agreement with permutation/subset oracles",
            e8,
        ),
        (
            "e9",
            "Hardness: BCBS reduction answer preservation (Theorem 4.4)",
            e9,
        ),
        (
            "e10",
            "Universal provenance homomorphism (Theorem 6.4)",
            e10,
        ),
        (
            "e11",
            "Linear op counts & non-growing support (Thm 6.7/Lemma 6.6)",
            e11,
        ),
        (
            "e12",
            "2-monoid laws vs (non-)distributivity (Section 5.2)",
            e12,
        ),
        (
            "e13",
            "Extensions: BSM witness extraction + expected-count semiring",
            e13,
        ),
        (
            "e14",
            "Ablation: elimination-plan order (Prop. 5.1 don't-care)",
            e14,
        ),
        (
            "e15",
            "Storage backends: ordered-map oracle vs columnar fast path",
            e15,
        ),
    ];
    for (id, title, f) in experiments {
        if let Some(ref want) = filter {
            if want != id {
                continue;
            }
        }
        println!("==== {} — {title} ====", id.to_uppercase());
        println!("{}", f());
    }
}

/// Figure 1 database and repair database.
fn fig1() -> (Database, Database, Interner) {
    let (d, mut i) = db_from_ints(&[
        ("R", &[&[1, 5]]),
        ("S", &[&[1, 1], &[1, 2]]),
        ("T", &[&[1, 2, 4]]),
    ]);
    let r = i.intern("R");
    let t = i.intern("T");
    let mut d_r = Database::new();
    d_r.insert_tuple(r, Tuple::ints(&[1, 6]));
    d_r.insert_tuple(r, Tuple::ints(&[1, 7]));
    d_r.insert_tuple(t, Tuple::ints(&[1, 1, 4]));
    d_r.insert_tuple(t, Tuple::ints(&[1, 2, 9]));
    (d, d_r, i)
}

fn e1() -> String {
    let (d, d_r, i) = fig1();
    let q = example_query();
    let mut rows = Vec::new();
    for theta in 0..=4usize {
        let unified = bsm::maximize(&q, &i, &d, &d_r, theta).unwrap().optimum();
        let brute = hq_baselines::maximize_bruteforce(&q, &i, &d, &d_r, theta).optimum;
        rows.push(vec![
            theta.to_string(),
            unified.to_string(),
            brute.to_string(),
            if unified == brute {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    let mut out = render_table(&["θ", "unified", "brute force", "agree"], &rows);
    out.push_str("paper: optimum 4 at θ=2 via repair {R(1,6), T(1,2,9)}\n");
    out
}

fn e2() -> String {
    let mut out = String::new();
    for (name, q) in [
        ("Example 5.2 (Eq. 1 query)", example_query()),
        (
            "Example 5.3 (chain)",
            Query::new(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])]).unwrap(),
        ),
        (
            "Example 5.4 (disconnected)",
            Query::new(&[("R", &["A"]), ("S", &["B"])]).unwrap(),
        ),
    ] {
        out.push_str(&format!("-- {name}: {q}\n"));
        match plan(&q) {
            Ok(p) => {
                out.push_str(&format!(
                    "   hierarchical; {} Rule-1 + {} Rule-2 steps\n{}\n",
                    p.rule1_count(),
                    p.rule2_count(),
                    p.trace(&q)
                ));
            }
            Err(e) => out.push_str(&format!("   stuck: {e}\n")),
        }
    }
    // Agreement of the three characterisations on random queries.
    let mut r = rng(42);
    let (mut total, mut hier) = (0u32, 0u32);
    for _ in 0..2000 {
        let q = random_query(&mut r, 5, 5);
        let a = is_hierarchical(&q);
        let b = plan(&q).is_ok();
        let c = hq_query::witness_forest(&q).is_some();
        assert!(a == b && b == c, "characterisations disagree on {q}");
        total += 1;
        if a {
            hier += 1;
        }
    }
    out.push_str(&format!(
        "\nrandom queries: {total} sampled, {hier} hierarchical; all three \
         characterisations agreed on every query\n"
    ));
    out
}

fn e3() -> String {
    let mut rows = Vec::new();
    for n in [1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000] {
        let w = chain_tid(n, 11);
        let ((p, stats), ms) =
            time_ms(|| pqe::probability_with_stats(&w.query, &w.interner, &w.tid).unwrap());
        let facts = w.tid.len();
        rows.push(vec![
            facts.to_string(),
            format!("{ms:.2}"),
            format!("{:.2}", ms * 1000.0 / facts as f64),
            format!("{p:.4}"),
            stats.total_ops().to_string(),
        ]);
    }
    let mut out = render_table(
        &["|D| (facts)", "time (ms)", "µs per fact", "P(Q)", "⊕/⊗ ops"],
        &rows,
    );
    out.push_str("claim: time and op count grow linearly (µs/fact ~ constant)\n");
    out
}

fn e4() -> String {
    let mut rows = Vec::new();
    for n in [3usize, 5, 7, 9] {
        // n facts per relation → 2n total; exhaustive cost 2^(2n).
        let w = chain_tid(n, 13);
        let (pu, t_unified) = time_ms(|| pqe::probability(&w.query, &w.interner, &w.tid).unwrap());
        let (pb, t_brute) =
            time_ms(|| hq_baselines::probability_exhaustive(&w.query, &w.interner, &w.tid));
        let (pp, t_par) = time_ms(|| {
            hq_baselines::probability_exhaustive_parallel(&w.query, &w.interner, &w.tid, 4)
        });
        let (pm, t_mc) = time_ms(|| {
            hq_baselines::probability_monte_carlo(&w.query, &w.interner, &w.tid, 2_000, &mut rng(5))
        });
        rows.push(vec![
            (2 * n).to_string(),
            format!("{t_unified:.3}"),
            format!("{t_brute:.3}"),
            format!("{t_par:.3}"),
            format!("{t_mc:.1}"),
            format!("{:.1e}", (pu - pb).abs()),
            format!("{:.1e}", (pu - pp).abs()),
            format!("{:.2}", (pu - pm).abs()),
        ]);
    }
    let mut out = render_table(
        &[
            "|D|",
            "unified ms",
            "worlds ms",
            "worlds∥4 ms",
            "MC-2k ms",
            "|Δ worlds|",
            "|Δ worlds∥|",
            "|Δ MC|",
        ],
        &rows,
    );
    out.push_str("claim: baseline doubles per added fact; unified stays flat; values agree\n");
    out
}

fn e5() -> String {
    let mut out = String::from("(a) fixed |D_r|=40/rel, θ=10, sweep |D|:\n");
    let mut rows = Vec::new();
    for d_size in [500usize, 1_000, 2_000, 4_000] {
        let w = bsm_workload(d_size, 40, 17);
        let (sol, ms) = time_ms(|| bsm::maximize(&w.query, &w.interner, &w.d, &w.d_r, 10).unwrap());
        rows.push(vec![
            (3 * d_size).to_string(),
            format!("{ms:.2}"),
            format!("{:.2}", ms * 1000.0 / (3 * d_size) as f64),
            sol.optimum().to_string(),
        ]);
    }
    out.push_str(&render_table(
        &["|D|", "time (ms)", "µs per fact", "optimum"],
        &rows,
    ));
    out.push_str("\n(b) fixed |D|=300/rel, sweep θ (vector length; ops are O(θ²)):\n");
    let mut rows = Vec::new();
    let mut prev: Option<f64> = None;
    for theta in [8usize, 16, 32, 64] {
        let w = bsm_workload(300, 200, 19);
        let (_, ms) =
            time_ms(|| bsm::maximize(&w.query, &w.interner, &w.d, &w.d_r, theta).unwrap());
        let ratio = prev.map_or("-".to_owned(), |p| format!("{:.2}", ms / p));
        prev = Some(ms);
        rows.push(vec![theta.to_string(), format!("{ms:.2}"), ratio]);
    }
    out.push_str(&render_table(&["θ", "time (ms)", "ratio vs prev"], &rows));
    out.push_str("claim: (a) linear in |D|; (b) ratio → ~4 as θ doubles (quadratic)\n");
    out
}

fn e6() -> String {
    let mut rows = Vec::new();
    for m in [4usize, 8, 12, 16] {
        // m candidate repair facts per relation (3m total), θ = m.
        let w = bsm_workload(10, m, 23);
        let theta = m;
        let (uni, t_u) =
            time_ms(|| bsm::maximize(&w.query, &w.interner, &w.d, &w.d_r, theta).unwrap());
        let candidates = w.d_r.difference(&w.d).len();
        let (brute, t_b) = if candidates <= 24 {
            let (b, t) = time_ms(|| {
                hq_baselines::maximize_bruteforce(&w.query, &w.interner, &w.d, &w.d_r, theta)
            });
            (Some(b.optimum), t)
        } else {
            (None, f64::NAN)
        };
        rows.push(vec![
            candidates.to_string(),
            theta.to_string(),
            format!("{t_u:.2}"),
            if t_b.is_nan() {
                "skipped".into()
            } else {
                format!("{t_b:.2}")
            },
            uni.optimum().to_string(),
            brute.map_or("-".into(), |b| b.to_string()),
            brute.map_or("-".into(), |b| {
                if b == uni.optimum() {
                    "yes".into()
                } else {
                    "NO".into()
                }
            }),
        ]);
    }
    let mut out = render_table(
        &[
            "|Dr\\D|",
            "θ",
            "unified ms",
            "brute ms",
            "uni opt",
            "brute opt",
            "agree",
        ],
        &rows,
    );
    out.push_str("claim: brute force explodes combinatorially; unified stays polynomial\n");
    out
}

fn e7() -> String {
    let mut out = String::from("(a) #Sat vector (one Algorithm-1 run), sweep |D_n|:\n");
    let mut rows = Vec::new();
    let mut prev: Option<f64> = None;
    for n_rel in [20usize, 40, 80, 160] {
        let w = shapley_workload(n_rel, 0.5, 29);
        let (_, ms) = time_ms(|| {
            shapley::sat_counts(&w.query, &w.interner, &w.exogenous, &w.endogenous).unwrap()
        });
        let ratio = prev.map_or("-".to_owned(), |p| format!("{:.2}", ms / p));
        prev = Some(ms);
        rows.push(vec![
            w.endogenous.len().to_string(),
            w.exogenous.len().to_string(),
            format!("{ms:.2}"),
            ratio,
        ]);
    }
    out.push_str(&render_table(
        &["|Dn|", "|Dx|", "time (ms)", "ratio"],
        &rows,
    ));
    out.push_str("\n(b) one full Shapley value (two #Sat runs + reduction):\n");
    let mut rows = Vec::new();
    for n_rel in [20usize, 40, 80] {
        // Fully endogenous: an exogenous witness would zero every value.
        let w = shapley_workload(n_rel, 1.0, 31);
        // Pick the most influential of the first few facts so the value
        // column is informative.
        let mut best = Rational::zero();
        let mut total_ms = 0.0;
        let probe = w.endogenous.len().min(4);
        for f in &w.endogenous[..probe] {
            let (v, ms) = time_ms(|| {
                shapley::shapley_value(&w.query, &w.interner, &w.exogenous, &w.endogenous, f)
                    .unwrap()
            });
            total_ms += ms;
            if v > best {
                best = v;
            }
        }
        rows.push(vec![
            w.endogenous.len().to_string(),
            format!("{:.2}", total_ms / probe as f64),
            format!("{:.3e}", best.to_f64()),
        ]);
    }
    out.push_str(&render_table(
        &["|Dn|", "ms per value", "max Shapley (4 probed)"],
        &rows,
    ));
    out.push_str(
        "claim: doubling |Dn| multiplies time by ~4-8 (the |Dn|² op cost), never exponentially\n",
    );
    out
}

fn e8() -> String {
    let mut rows = Vec::new();
    let mut r = rng(37);
    for trial in 0..5 {
        let w = shapley_workload(3 + trial, 0.9, 100 + trial as u64);
        let endo = &w.endogenous[..w.endogenous.len().min(6)];
        if endo.is_empty() {
            continue;
        }
        let f = &endo[r.gen_range(0..endo.len())];
        let unified = shapley::shapley_value(&w.query, &w.interner, &w.exogenous, endo, f).unwrap();
        let by_perm =
            hq_baselines::shapley_by_permutations(&w.query, &w.interner, &w.exogenous, endo, f);
        let by_subset =
            hq_baselines::shapley_by_subsets(&w.query, &w.interner, &w.exogenous, endo, f);
        rows.push(vec![
            trial.to_string(),
            endo.len().to_string(),
            unified.to_string(),
            by_perm.to_string(),
            by_subset.to_string(),
            if unified == by_perm && by_perm == by_subset {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    let mut out = render_table(
        &[
            "trial",
            "|Dn|",
            "unified",
            "permutations",
            "subset-sum",
            "all equal",
        ],
        &rows,
    );
    out.push_str("claim: the unified value equals Definition 5.12 verbatim (exact rationals)\n");
    out
}

fn e9() -> String {
    let q = q_non_hierarchical();
    let mut out = String::from("(a) answer preservation on random graphs (k=2):\n");
    let mut rows = Vec::new();
    let mut r = rng(41);
    for n in [5usize, 6, 7] {
        let g = random_graph(n, 0.5, &mut r);
        let inst = hq_baselines::reduce_bcbs_to_bsm(&q, &g, 2);
        let (bcbs, t_g) = time_ms(|| hq_baselines::bcbs_decision(&g, 2));
        let (bsm_ans, t_b) = time_ms(|| {
            hq_baselines::decide_bruteforce(
                &q,
                &inst.interner,
                &inst.d,
                &inst.d_r,
                inst.theta,
                inst.tau,
            )
        });
        rows.push(vec![
            n.to_string(),
            g.edges.len().to_string(),
            bcbs.to_string(),
            bsm_ans.to_string(),
            if bcbs == bsm_ans {
                "yes".into()
            } else {
                "NO".into()
            },
            format!("{t_g:.2}"),
            format!("{t_b:.2}"),
        ]);
    }
    out.push_str(&render_table(
        &[
            "n",
            "|E|",
            "BCBS",
            "BSM via reduction",
            "agree",
            "BCBS ms",
            "BSM ms",
        ],
        &rows,
    ));
    out.push_str("\n(b) planted K_{2,2} is found through the reduction:\n");
    let g = planted_biclique(8, 2, 0.1, &mut r);
    let inst = hq_baselines::reduce_bcbs_to_bsm(&q, &g, 2);
    let found = hq_baselines::decide_bruteforce(
        &q,
        &inst.interner,
        &inst.d,
        &inst.d_r,
        inst.theta,
        inst.tau,
    );
    out.push_str(&format!(
        "   planted instance answered: {found} (expected true)\n"
    ));
    out.push_str(
        "\n(c) the dichotomy, measured — same budget of work, hierarchical vs non-hierarchical:\n",
    );
    let mut rows = Vec::new();
    for m in [6usize, 10, 14, 18] {
        // Non-hierarchical: brute force over m candidates.
        let g = random_graph(m / 2, 0.5, &mut r);
        let inst = hq_baselines::reduce_bcbs_to_bsm(&q, &g, 2);
        let (_, t_nh) = time_ms(|| {
            hq_baselines::decide_bruteforce(
                &q,
                &inst.interner,
                &inst.d,
                &inst.d_r,
                inst.theta,
                inst.tau,
            )
        });
        // Hierarchical: unified algorithm on a comparable instance.
        let w = bsm_workload(m, m, 43);
        let (_, t_h) = time_ms(|| bsm::maximize(&w.query, &w.interner, &w.d, &w.d_r, 4).unwrap());
        rows.push(vec![
            m.to_string(),
            format!("{t_nh:.2}"),
            format!("{t_h:.2}"),
        ]);
    }
    out.push_str(&render_table(
        &["size", "non-hier (brute) ms", "hier (unified) ms"],
        &rows,
    ));
    out
}

fn e10() -> String {
    // Theorem 6.4, executed: run Algorithm 1 over the provenance
    // 2-monoid, then apply each problem's homomorphism φ and compare
    // with the direct run.
    let mut r = rng(47);
    let trials = 200;
    let mut checked = 0u32;
    for _ in 0..trials {
        let q = random_hierarchical(&mut r, 4, 4);
        let mut interner = Interner::new();
        let mut db = Database::new();
        for atom in q.atoms() {
            let rel = interner.intern(&atom.rel);
            let cols = vec![hq_db::generate::ColumnDist::Uniform { domain: 3 }; atom.vars.len()];
            hq_db::generate::fill_relation(&mut db, rel, &cols, 4, &mut r);
        }
        let facts = db.facts();
        let prov = hq_unify::provenance_tree(&q, &interner, &facts).unwrap();
        // φ for the counting semiring: multiplicity of the formula.
        let (direct_count, _) = hq_unify::evaluate(
            &CountMonoid,
            &q,
            &interner,
            facts.iter().map(|f| (f.clone(), 1u64)),
        )
        .unwrap();
        assert_eq!(
            prov.tree.multiplicity(&|_| 1),
            direct_count,
            "count φ failed on {q}"
        );
        // φ for probabilities: evaluate the tree bottom-up in the
        // probability monoid (valid on decomposable trees).
        let probs: Vec<f64> = facts
            .iter()
            .enumerate()
            .map(|(i, _)| 0.1 + 0.8 * ((i as f64 * 0.37) % 1.0))
            .collect();
        let phi_p = eval_prob(&prov.tree, &probs);
        let (direct_p, _) = hq_unify::evaluate(
            &ProbMonoid,
            &q,
            &interner,
            facts.iter().enumerate().map(|(i, f)| (f.clone(), probs[i])),
        )
        .unwrap();
        assert!((phi_p - direct_p).abs() < 1e-9, "prob φ failed on {q}");
        checked += 1;
    }
    format!(
        "{checked}/{trials} random (query, database) pairs: φ(provenance run) \
         matched the direct run for the counting and probability monoids\n\
         (the proptest suites additionally cover the BSM and #Sat monoids)\n"
    )
}

fn eval_prob(tree: &hq_monoid::Prov, probs: &[f64]) -> f64 {
    use hq_monoid::Prov;
    match tree {
        Prov::False => 0.0,
        Prov::True => 1.0,
        Prov::Leaf(s) => probs[*s as usize],
        Prov::Or(cs) => {
            1.0 - cs
                .iter()
                .map(|c| 1.0 - eval_prob(c, probs))
                .product::<f64>()
        }
        Prov::And(cs) => cs.iter().map(|c| eval_prob(c, probs)).product(),
    }
}

fn e11() -> String {
    let mut rows = Vec::new();
    for n in [1_000usize, 2_000, 4_000, 8_000] {
        let w = star_tid(n, 53);
        let (_, stats) = pqe::probability_with_stats(&w.query, &w.interner, &w.tid).unwrap();
        rows.push(vec![
            w.tid.len().to_string(),
            stats.total_ops().to_string(),
            format!("{:.3}", stats.total_ops() as f64 / w.tid.len() as f64),
            stats.support_never_grew().to_string(),
            format!("{:?}", stats.support_sizes),
        ]);
    }
    let mut out = render_table(
        &[
            "|D|",
            "⊕/⊗ ops",
            "ops per fact",
            "support never grew",
            "support trajectory",
        ],
        &rows,
    );
    out.push_str(
        "claim: ops/|D| bounded by a constant (Thm 6.7); support non-increasing (Lemma 6.6)\n",
    );
    out
}

fn e12() -> String {
    let mut rows = Vec::new();
    {
        let m = ProbMonoid;
        let sample = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        rows.push(law_row(
            "probability (Def 5.7)",
            &m,
            &sample,
            hq_monoid::prob::approx_eq,
        ));
    }
    {
        let m = ExactProbMonoid;
        let sample: Vec<Rational> = [(0u64, 1u64), (1, 4), (1, 2), (3, 4), (1, 1)]
            .iter()
            .map(|&(p, q)| Rational::ratio(p, q))
            .collect();
        rows.push(law_row("probability exact", &m, &sample, |a, b| a == b));
    }
    {
        let m = BagMaxMonoid::new(3);
        let sample = vec![
            m.zero(),
            m.one(),
            m.star(),
            m.vec_from(&[0, 2, 3, 5]),
            m.vec_from(&[1, 1, 4, 4]),
        ];
        rows.push(law_row("bag-set max (Def 5.9)", &m, &sample, |a, b| a == b));
    }
    {
        let m = SatCountMonoid::new(3);
        let sample = vec![
            m.zero(),
            m.one(),
            m.star(),
            m.add(&m.star(), &m.star()),
            m.mul(&m.star(), &m.star()),
        ];
        rows.push(law_row("#Sat / Shapley (Def 5.14)", &m, &sample, |a, b| {
            a == b
        }));
    }
    {
        let m = BoolMonoid;
        rows.push(law_row("Boolean semiring", &m, &[false, true], |a, b| {
            a == b
        }));
    }
    {
        let m = CountMonoid;
        let sample: Vec<u64> = (0..5).collect();
        rows.push(law_row("counting semiring", &m, &sample, |a, b| a == b));
    }
    {
        let m = TropicalMinMonoid;
        let sample = vec![0u64, 1, 3, 7, hq_monoid::TROPICAL_INF];
        rows.push(law_row("tropical semiring", &m, &sample, |a, b| a == b));
    }
    let mut out = render_table(
        &["structure", "2-monoid laws", "distributive", "annihilating"],
        &rows,
    );
    out.push_str(
        "claim: all three problem monoids are 2-monoids but NOT semirings \
         (no distributivity) — exactly why Algorithm 1 covers hierarchical,\n\
         not all acyclic, queries; the classical semirings pass everything\n",
    );
    out
}

fn law_row<M: TwoMonoid>(
    name: &str,
    m: &M,
    sample: &[M::Elem],
    eq: impl Fn(&M::Elem, &M::Elem) -> bool + Copy,
) -> Vec<String> {
    let laws = check_laws(m, sample, eq);
    let dist = distributivity_counterexample(m, sample, eq).is_none();
    let ann = annihilation_counterexample(m, sample, eq).is_none();
    vec![
        name.to_owned(),
        if laws.all_hold() {
            "hold".into()
        } else {
            "VIOLATED".into()
        },
        if dist {
            "yes".into()
        } else {
            "no (witness found)".into()
        },
        if ann {
            "yes".into()
        } else {
            "no (witness found)".into()
        },
    ]
}

fn e13() -> String {
    // (a) Witness extraction on Figure 1: the worklist per budget.
    let (d, d_r, i) = fig1();
    let q = example_query();
    let sol = bsm::maximize_with_repair(&q, &i, &d, &d_r, 4).unwrap();
    let mut rows = Vec::new();
    for t in 0..=4usize {
        let names: Vec<String> = sol
            .repair_at(t)
            .iter()
            .map(|f| f.display(&i).to_string())
            .collect();
        rows.push(vec![
            t.to_string(),
            sol.value_at(t).to_string(),
            if names.is_empty() {
                "—".into()
            } else {
                names.join(", ")
            },
        ]);
    }
    let mut out = String::from("(a) Figure 1 with witness extraction:\n");
    out.push_str(&render_table(
        &["θ", "optimum", "one optimal repair"],
        &rows,
    ));
    // (b) Expected bag-set value vs marginal probability on a TID workload.
    out.push_str("\n(b) E[Q(D)] (real semiring) vs P(Q) (Def. 5.7 monoid):\n");
    let mut rows = Vec::new();
    for n in [100usize, 400, 1600] {
        let w = chain_tid(n, 71);
        let (p, _) = time_ms(|| pqe::probability(&w.query, &w.interner, &w.tid).unwrap());
        let (e, ms) = time_ms(|| pqe::expected_count(&w.query, &w.interner, &w.tid).unwrap());
        rows.push(vec![
            w.tid.len().to_string(),
            format!("{p:.4}"),
            format!("{e:.2}"),
            format!("{ms:.2}"),
        ]);
    }
    out.push_str(&render_table(&["|D|", "P(Q)", "E[Q(D)]", "ms"], &rows));
    out.push_str("claim: the same engine run with a semiring recovers classical\nexpectation computation; P(Q) ≤ E[Q(D)] (Markov) on every row\n");
    out
}

fn e14() -> String {
    use hq_query::{plan_with_order, PlanOrder};
    use hq_unify::{annotate, run_plan};
    let w = star_tid(8_000, 61);
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, order) in [
        ("rule1-first (default)", PlanOrder::Rule1First),
        ("rule2-first (merge eagerly)", PlanOrder::Rule2First),
        ("rule1, highest var first", PlanOrder::Rule1HighVar),
    ] {
        let p = plan_with_order(&w.query, order).unwrap();
        let db = annotate(
            &w.query,
            &w.interner,
            w.tid.iter().map(|(f, pr)| (f.clone(), *pr)),
        )
        .unwrap();
        let ((value, stats), ms) = time_ms(|| run_plan(&hq_monoid::ProbMonoid, &p, db));
        results.push(value);
        let peak = stats.support_sizes.iter().copied().max().unwrap_or(0);
        rows.push(vec![
            name.to_owned(),
            format!("{ms:.2}"),
            stats.total_ops().to_string(),
            peak.to_string(),
            format!("{value:.6}"),
        ]);
    }
    assert!(
        results.windows(2).all(|x| (x[0] - x[1]).abs() < 1e-9),
        "orders must agree: {results:?}"
    );
    let mut out = render_table(
        &["plan order", "time (ms)", "⊕/⊗ ops", "peak support", "P(Q)"],
        &rows,
    );
    out.push_str(
        "claim (Prop. 5.1): every elimination order yields the same result;\n\
         order only shifts constants (op counts / intermediate sizes)\n",
    );
    out
}

fn e15() -> String {
    use hq_unify::{bsm, Backend};
    let mut out = String::from("(a) PQE, chain query, both backends (bit-identical P(Q)):\n");
    let mut rows = Vec::new();
    for n in [2_000usize, 8_000, 32_000] {
        let w = chain_tid(n, 11);
        let (pm, t_map) =
            time_ms(|| pqe::probability_on(Backend::Map, &w.query, &w.interner, &w.tid).unwrap());
        let (pc, t_col) = time_ms(|| {
            pqe::probability_on(Backend::Columnar, &w.query, &w.interner, &w.tid).unwrap()
        });
        assert_eq!(
            pm.to_bits(),
            pc.to_bits(),
            "backends must agree bit-for-bit"
        );
        rows.push(vec![
            w.tid.len().to_string(),
            format!("{t_map:.2}"),
            format!("{t_col:.2}"),
            format!("{:.2}x", t_map / t_col),
        ]);
    }
    out.push_str(&render_table(
        &["|D|", "map ms", "columnar ms", "speedup"],
        &rows,
    ));
    out.push_str("\n(b) BSM (θ=10), both backends (identical curves):\n");
    let mut rows = Vec::new();
    for d_size in [500usize, 2_000, 8_000] {
        let w = bsm_workload(d_size, 40, 17);
        let (sm, t_map) = time_ms(|| {
            bsm::maximize_on(Backend::Map, &w.query, &w.interner, &w.d, &w.d_r, 10).unwrap()
        });
        let (sc, t_col) = time_ms(|| {
            bsm::maximize_on(Backend::Columnar, &w.query, &w.interner, &w.d, &w.d_r, 10).unwrap()
        });
        assert_eq!(sm.curve, sc.curve, "backends must agree");
        rows.push(vec![
            (3 * d_size).to_string(),
            format!("{t_map:.2}"),
            format!("{t_col:.2}"),
            format!("{:.2}x", t_map / t_col),
        ]);
    }
    out.push_str(&render_table(
        &["|D|", "map ms", "columnar ms", "speedup"],
        &rows,
    ));
    out.push_str("claim: same ops, same answers; the columnar layout only shrinks the constants\n");
    out
}
