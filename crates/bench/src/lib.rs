//! # hq-bench — workload builders shared by the benches and the
//! experiments harness
//!
//! Every experiment in `EXPERIMENTS.md` (and every criterion bench)
//! draws its inputs from the seeded builders here, so the harness and
//! the benches measure the same distributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hq_db::generate::{fill_relation, rng, ColumnDist};
use hq_db::{Database, Fact, Interner};
use hq_query::{example_query, q_hierarchical, Query};
use rand::Rng;
use std::time::Instant;

/// A tuple-independent probabilistic-database workload.
pub struct TidWorkload {
    /// The (hierarchical) query.
    pub query: Query,
    /// Interner binding the relation names.
    pub interner: Interner,
    /// The underlying set database.
    pub database: Database,
    /// Facts with probabilities.
    pub tid: Vec<(Fact, f64)>,
}

/// Builds a TID workload for `Q_h() :- E(X,Y), F(Y,Z)` with
/// `facts_per_relation` facts per relation over a join-friendly domain
/// (`√n`-sized join column so matches actually occur).
pub fn chain_tid(facts_per_relation: usize, seed: u64) -> TidWorkload {
    let query = q_hierarchical();
    let mut interner = Interner::new();
    let mut r = rng(seed);
    let mut database = Database::new();
    let join_dom = ((facts_per_relation as f64).sqrt().ceil() as u64).max(2);
    let wide_dom = (facts_per_relation as u64 * 4).max(8);
    let e = interner.intern("E");
    let f = interner.intern("F");
    fill_relation(
        &mut database,
        e,
        &[
            ColumnDist::Uniform { domain: wide_dom },
            ColumnDist::Uniform { domain: join_dom },
        ],
        facts_per_relation,
        &mut r,
    );
    fill_relation(
        &mut database,
        f,
        &[
            ColumnDist::Uniform { domain: join_dom },
            ColumnDist::Uniform { domain: wide_dom },
        ],
        facts_per_relation,
        &mut r,
    );
    let tid = database
        .facts()
        .into_iter()
        .map(|fact| (fact, r.gen_range(0.05..0.95)))
        .collect();
    TidWorkload {
        query,
        interner,
        database,
        tid,
    }
}

/// Builds a TID workload for the paper's Eq. (1) query
/// `Q() :- R(A,B), S(A,C), T(A,C,D)`.
pub fn star_tid(facts_per_relation: usize, seed: u64) -> TidWorkload {
    let query = example_query();
    let mut interner = Interner::new();
    let mut r = rng(seed);
    let mut database = Database::new();
    let a_dom = ((facts_per_relation as f64).sqrt().ceil() as u64).max(2);
    let c_dom = 4u64;
    let wide = (facts_per_relation as u64 * 4).max(8);
    let rel_r = interner.intern("R");
    let rel_s = interner.intern("S");
    let rel_t = interner.intern("T");
    fill_relation(
        &mut database,
        rel_r,
        &[
            ColumnDist::Uniform { domain: a_dom },
            ColumnDist::Uniform { domain: wide },
        ],
        facts_per_relation,
        &mut r,
    );
    fill_relation(
        &mut database,
        rel_s,
        &[
            ColumnDist::Uniform { domain: a_dom },
            ColumnDist::Uniform { domain: c_dom },
        ],
        facts_per_relation,
        &mut r,
    );
    fill_relation(
        &mut database,
        rel_t,
        &[
            ColumnDist::Uniform { domain: a_dom },
            ColumnDist::Uniform { domain: c_dom },
            ColumnDist::Uniform { domain: wide },
        ],
        facts_per_relation,
        &mut r,
    );
    let tid = database
        .facts()
        .into_iter()
        .map(|fact| (fact, r.gen_range(0.05..0.95)))
        .collect();
    TidWorkload {
        query,
        interner,
        database,
        tid,
    }
}

/// A Bag-Set Maximization workload `(Q, D, D_r)` over the Eq. (1)
/// schema with the same join-friendly domains as [`star_tid`].
pub struct BsmWorkload {
    /// The query.
    pub query: Query,
    /// Interner binding names.
    pub interner: Interner,
    /// The database to repair.
    pub d: Database,
    /// The repair database.
    pub d_r: Database,
}

/// Builds a BSM workload: `d_size` facts per relation in `D` and
/// `dr_size` per relation in `D_r` (same domains, so repairs join).
pub fn bsm_workload(d_size: usize, dr_size: usize, seed: u64) -> BsmWorkload {
    let base = star_tid(d_size, seed);
    let mut interner = base.interner;
    let mut r = rng(seed ^ 0xBEEF);
    let mut d_r = Database::new();
    let a_dom = ((d_size as f64).sqrt().ceil() as u64).max(2);
    let c_dom = 4u64;
    let wide = (d_size as u64 * 4).max(8);
    for (name, cols) in [
        (
            "R",
            vec![
                ColumnDist::Uniform { domain: a_dom },
                ColumnDist::Uniform { domain: wide },
            ],
        ),
        (
            "S",
            vec![
                ColumnDist::Uniform { domain: a_dom },
                ColumnDist::Uniform { domain: c_dom },
            ],
        ),
        (
            "T",
            vec![
                ColumnDist::Uniform { domain: a_dom },
                ColumnDist::Uniform { domain: c_dom },
                ColumnDist::Uniform { domain: wide },
            ],
        ),
    ] {
        let rel = interner.intern(name);
        fill_relation(&mut d_r, rel, &cols, dr_size, &mut r);
    }
    BsmWorkload {
        query: base.query,
        interner,
        d: base.database,
        d_r,
    }
}

/// A Shapley workload: chain query with an exogenous/endogenous split.
pub struct ShapleyWorkload {
    /// The query.
    pub query: Query,
    /// Interner binding names.
    pub interner: Interner,
    /// Exogenous facts.
    pub exogenous: Vec<Fact>,
    /// Endogenous facts.
    pub endogenous: Vec<Fact>,
}

/// Builds a Shapley workload with roughly `endo_fraction` of the facts
/// endogenous.
pub fn shapley_workload(
    facts_per_relation: usize,
    endo_fraction: f64,
    seed: u64,
) -> ShapleyWorkload {
    let base = chain_tid(facts_per_relation, seed);
    let mut r = rng(seed ^ 0xFACE);
    let (exogenous, endogenous) =
        hq_db::generate::random_endogenous_split(&base.database, endo_fraction, &mut r);
    ShapleyWorkload {
        query: base.query,
        interner: base.interner,
        exogenous,
        endogenous,
    }
}

/// Times a closure, returning `(result, milliseconds)`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Mean wall-clock nanoseconds per call over `iters` measured runs
/// (after one discarded warm-up call).
pub fn mean_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e9 / iters.max(1) as f64
}

/// Whether the CI bench smoke mode is on (`HQ_BENCH_SMOKE` set):
/// benches shrink to their smallest size and skip wall-clock speedup
/// assertions, but still execute every kernel — including the in-bench
/// bit-identity checks across backends and thread counts.
pub fn smoke_mode() -> bool {
    std::env::var_os("HQ_BENCH_SMOKE").is_some()
}

/// Hardware threads of this host (1 when unknown).
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One measured point of a machine-readable bench summary: a workload
/// at a thread count.
#[derive(Debug, Clone)]
pub struct SummaryEntry {
    /// Workload label, e.g. `chain_16000`.
    pub workload: String,
    /// Worker-thread count of the run.
    pub threads: usize,
    /// Mean wall-clock nanoseconds per run.
    pub mean_ns: f64,
    /// Wall-clock speedup versus the 1-thread run of the same workload.
    pub speedup_vs_1: f64,
    /// Persistent-pool workers alive when the point was measured (the
    /// submitting thread also executes tasks and is not counted).
    pub pool_workers: usize,
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
}

/// Writes `BENCH_<name>.json` at the workspace root so future PRs can
/// track the perf trajectory mechanically. The format is
/// hand-serialised (no JSON dependency in the container): one object
/// with the bench name, the host's hardware-thread count, and the
/// entry list.
///
/// Skipped (returning `"(skipped: CI)"`) when the `CI` environment
/// variable is set, so CI smoke runs never clobber the checked-in
/// summaries with throwaway numbers from the runner hardware.
///
/// # Errors
/// Propagates the underlying file write error.
pub fn write_bench_summary(name: &str, entries: &[SummaryEntry]) -> std::io::Result<String> {
    if std::env::var_os("CI").is_some() {
        return Ok("(skipped: CI)".to_owned());
    }
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bench\": \"{name}\",\n"));
    json.push_str(&format!("  \"host_threads\": {},\n", host_threads()));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"mean_ns\": {:.0}, \"speedup_vs_1\": {:.3}, \"pool_workers\": {}, \"host_threads\": {}}}{}\n",
            e.workload,
            e.threads,
            e.mean_ns,
            e.speedup_vs_1,
            e.pool_workers,
            e.host_threads,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = format!("{}/../../BENCH_{name}.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json)?;
    Ok(path)
}

/// Runs a `workload × threads` wall-clock sweep: calls `run(threads)`
/// `iters` times per thread count, returns the summary entries in
/// sweep order, and prints an aligned table. The caller is responsible
/// for asserting that every thread count returned identical results
/// (the engine guarantees it; the benches pin it).
pub fn thread_sweep<T>(
    workload: &str,
    thread_counts: &[usize],
    iters: usize,
    mut run: impl FnMut(usize) -> T,
) -> Vec<SummaryEntry> {
    let mut entries: Vec<SummaryEntry> = thread_counts
        .iter()
        .map(|&t| {
            let measured = mean_ns(iters, || run(t));
            SummaryEntry {
                workload: workload.to_owned(),
                threads: t,
                mean_ns: measured,
                speedup_vs_1: 1.0,
                // Sampled after the runs: the resolved pool size the
                // measurements actually executed on.
                pool_workers: hq_unify::pool::workers(),
                host_threads: host_threads(),
            }
        })
        .collect();
    // Speedups are relative to the 1-thread run; when the sweep has no
    // 1-thread point, fall back to the first entry so the field (and
    // the JSON it lands in) is always a finite number.
    let base_ns = entries
        .iter()
        .find(|e| e.threads == 1)
        .or(entries.first())
        .map(|e| e.mean_ns)
        .unwrap_or(1.0);
    for e in &mut entries {
        e.speedup_vs_1 = base_ns / e.mean_ns;
    }
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.workload.clone(),
                e.threads.to_string(),
                format!("{:.3}", e.mean_ns / 1e6),
                format!("{:.2}x", e.speedup_vs_1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["workload", "threads", "ms/iter", "speedup"], &rows)
    );
    entries
}

/// Renders an aligned text table (used by the experiments harness).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        s.push('\n');
        s
    };
    let mut out = line(&headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>());
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}-|", "-".repeat(w + 2 - 1)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_workload_sizes() {
        let w = chain_tid(100, 1);
        assert_eq!(w.tid.len(), 200);
        assert!(w.tid.iter().all(|&(_, p)| (0.05..0.95).contains(&p)));
    }

    #[test]
    fn workloads_are_deterministic() {
        let w1 = chain_tid(50, 7);
        let w2 = chain_tid(50, 7);
        assert_eq!(w1.tid, w2.tid);
        let b1 = bsm_workload(20, 10, 3);
        let b2 = bsm_workload(20, 10, 3);
        assert_eq!(b1.d, b2.d);
        assert_eq!(b1.d_r, b2.d_r);
    }

    #[test]
    fn chain_workload_actually_joins() {
        // The domains are tuned so the query has non-trivial probability.
        let w = chain_tid(200, 2);
        let p = hq_unify::pqe::probability(&w.query, &w.interner, &w.tid).unwrap();
        assert!(p > 0.5, "workload should produce matches, got p={p}");
    }

    #[test]
    fn star_workload_joins() {
        let w = star_tid(200, 3);
        let p = hq_unify::pqe::probability(&w.query, &w.interner, &w.tid).unwrap();
        assert!(p > 0.1, "got p={p}");
    }

    #[test]
    fn bsm_workload_repair_helps() {
        let b = bsm_workload(30, 20, 4);
        let zero = hq_unify::bsm::maximize(&b.query, &b.interner, &b.d, &b.d_r, 0)
            .unwrap()
            .optimum();
        let five = hq_unify::bsm::maximize(&b.query, &b.interner, &b.d, &b.d_r, 5)
            .unwrap()
            .optimum();
        assert!(five >= zero);
    }

    #[test]
    fn shapley_workload_splits() {
        let w = shapley_workload(30, 0.3, 5);
        assert_eq!(w.exogenous.len() + w.endogenous.len(), 60);
        assert!(!w.endogenous.is_empty());
    }

    #[test]
    fn thread_sweep_speedups_always_finite() {
        // Even without a 1-thread point the speedup field must stay a
        // finite number (the JSON summary has no NaN representation).
        let entries = thread_sweep("w", &[2, 4], 1, |t| std::hint::black_box(t * 2));
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.speedup_vs_1.is_finite()));
        let with_one = thread_sweep("w", &[1, 2], 1, std::hint::black_box);
        assert_eq!(with_one[0].speedup_vs_1, 1.0);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["n", "time"],
            &[
                vec!["10".into(), "1.5".into()],
                vec!["1000".into(), "2.25".into()],
            ],
        );
        assert!(t.contains("| n    | time |"));
        assert_eq!(t.lines().count(), 4);
    }
}
