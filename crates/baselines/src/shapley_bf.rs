//! Brute-force `#Sat` and Shapley values.
//!
//! Two definitional algorithms:
//!
//! * [`sat_counts_bruteforce`] — enumerate all `2^|D_n|` endogenous
//!   subsets and evaluate `Q` on each (Definition 5.13);
//! * [`shapley_by_permutations`] — Definition 5.12 verbatim: walk every
//!   permutation of `D_n` and count the arrivals of `f` that flip `Q`
//!   from false to true.
//!
//! Both are oracles for the unifying algorithm's Shapley front-end.

use hq_arith::{factorial, Natural, Rational};
use hq_db::{satisfiable, Database, Fact, Interner, Pattern};
use hq_query::Query;

fn build_pattern(q: &Query, interner: &Interner) -> Pattern {
    let mut i2 = interner.clone();
    q.to_pattern(&mut i2)
}

fn holds(pattern: &Pattern, exo: &[Fact], chosen: &[&Fact], all: &[Fact]) -> bool {
    let mut db = Database::new();
    for f in exo.iter().chain(chosen.iter().copied()) {
        db.insert(f.clone());
    }
    // Declare every relation appearing anywhere so arity validation is
    // consistent across subsets.
    for f in all {
        db.declare(f.rel, f.tuple.arity());
    }
    satisfiable(&db, pattern).expect("validated pattern")
}

/// `#Sat(k)` for `k = 0..=|D_n|` by subset enumeration.
///
/// # Panics
/// Panics if `|D_n| > 24`.
pub fn sat_counts_bruteforce(
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
) -> Vec<Natural> {
    let n = endogenous.len();
    assert!(n <= 24, "brute-force #Sat beyond 24 endogenous facts");
    let pattern = build_pattern(q, interner);
    let all: Vec<Fact> = exogenous.iter().chain(endogenous).cloned().collect();
    let mut counts = vec![Natural::zero(); n + 1];
    for mask in 0u64..(1 << n) {
        let chosen: Vec<&Fact> = endogenous
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, f)| f)
            .collect();
        if holds(&pattern, exogenous, &chosen, &all) {
            let k = mask.count_ones() as usize;
            counts[k].add_assign_ref(&Natural::one());
        }
    }
    counts
}

/// The Shapley value of `fact` by exhaustive permutation walk
/// (Definition 5.12 / Eq. (14) verbatim).
///
/// # Panics
/// Panics if `|D_n| > 9` (factorial blowup) or `fact` is not
/// endogenous.
pub fn shapley_by_permutations(
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
    fact: &Fact,
) -> Rational {
    let n = endogenous.len();
    assert!(n <= 9, "permutation-walk Shapley beyond 9 endogenous facts");
    assert!(endogenous.contains(fact), "fact must be endogenous");
    let pattern = build_pattern(q, interner);
    let all: Vec<Fact> = exogenous.iter().chain(endogenous).cloned().collect();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut flips = Natural::zero();
    permute(&mut indices, 0, &mut |perm| {
        // Find the arrival position of `fact` and evaluate before/after.
        let pos = perm
            .iter()
            .position(|&i| &endogenous[i] == fact)
            .expect("fact is endogenous");
        let before: Vec<&Fact> = perm[..pos].iter().map(|&i| &endogenous[i]).collect();
        let mut after = before.clone();
        after.push(fact);
        if !holds(&pattern, exogenous, &before, &all) && holds(&pattern, exogenous, &after, &all) {
            flips.add_assign_ref(&Natural::one());
        }
    });
    Rational::from_naturals(flips, factorial(n as u64))
}

fn permute(indices: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == indices.len() {
        visit(indices);
        return;
    }
    for i in k..indices.len() {
        indices.swap(k, i);
        permute(indices, k + 1, visit);
        indices.swap(k, i);
    }
}

/// The Shapley value of `fact` via the subset-sum formula (the middle
/// line of the Section 5.6 derivation) — an independent second oracle
/// with `2^(n-1)` work instead of `n!`.
///
/// # Panics
/// Panics if `|D_n| > 20` or `fact` is not endogenous.
pub fn shapley_by_subsets(
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
    fact: &Fact,
) -> Rational {
    let n = endogenous.len();
    assert!(n <= 20, "subset-sum Shapley beyond 20 endogenous facts");
    let pos = endogenous
        .iter()
        .position(|f| f == fact)
        .expect("fact must be endogenous");
    let rest: Vec<Fact> = endogenous
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != pos)
        .map(|(_, f)| f.clone())
        .collect();
    let pattern = build_pattern(q, interner);
    let all: Vec<Fact> = exogenous.iter().chain(endogenous).cloned().collect();
    let n_fact = factorial(n as u64);
    let mut total = Rational::zero();
    for mask in 0u64..(1 << rest.len()) {
        let chosen: Vec<&Fact> = rest
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, f)| f)
            .collect();
        let k = mask.count_ones() as u64;
        let without = holds(&pattern, exogenous, &chosen, &all);
        let mut with_f = chosen.clone();
        with_f.push(fact);
        let with = holds(&pattern, exogenous, &with_f, &all);
        if with && !without {
            // weight = k! (n-k-1)! / n!
            let w = Rational::from_naturals(
                factorial(k).mul_ref(&factorial(n as u64 - k - 1)),
                n_fact.clone(),
            );
            total = &total + &w;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::db_from_ints;
    use hq_query::{q_hierarchical, q_non_hierarchical, Query};

    #[test]
    fn sat_counts_single_atom() {
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2]])]);
        let endo = db.facts();
        let counts = sat_counts_bruteforce(&q, &i, &[], &endo);
        let as_u64: Vec<u64> = counts.iter().map(|c| c.to_u64().unwrap()).collect();
        assert_eq!(as_u64, vec![0, 2, 1]);
    }

    #[test]
    fn permutation_and_subset_oracles_agree() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 8], &[2, 9]])]);
        let endo = db.facts();
        for f in &endo {
            let by_perm = shapley_by_permutations(&q, &i, &[], &endo, f);
            let by_subset = shapley_by_subsets(&q, &i, &[], &endo, f);
            assert_eq!(by_perm, by_subset, "{}", f.display(&i));
        }
    }

    #[test]
    fn known_asymmetric_values() {
        // Same instance as the unify test: Shapley(E)=2/3, Shapley(F)=1/6.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 8], &[2, 9]])]);
        let endo = db.facts();
        let e_fact = endo.iter().find(|f| f.rel == i.get("E").unwrap()).unwrap();
        assert_eq!(
            shapley_by_permutations(&q, &i, &[], &endo, e_fact),
            Rational::ratio(2, 3)
        );
    }

    #[test]
    fn works_for_non_hierarchical() {
        // The definitional algorithms are query-agnostic.
        let q = q_non_hierarchical();
        let (db, i) = db_from_ints(&[("R", &[&[1]]), ("S", &[&[1, 2]]), ("T", &[&[2]])]);
        let endo = db.facts();
        let total: Rational = endo
            .iter()
            .map(|f| shapley_by_permutations(&q, &i, &[], &endo, f))
            .fold(Rational::zero(), |acc, v| &acc + &v);
        // Efficiency: all three facts needed, total value 1.
        assert_eq!(total, Rational::one());
    }

    #[test]
    fn exogenous_facts_respected() {
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2]])]);
        let facts = db.facts();
        let (exo, endo) = facts.split_at(1);
        let v = shapley_by_permutations(&q, &i, exo, endo, &endo[0]);
        assert_eq!(v, Rational::zero(), "query already true exogenously");
    }
}
