//! Exact Probabilistic Query Evaluation by possible-world enumeration.
//!
//! The definitional algorithm: sum the probabilities of all `2^|D|`
//! subsets of the tuple-independent database on which `Q` holds. This
//! is the object Theorem 5.8 beats — exponential here, linear for the
//! unifying algorithm — and the correctness oracle for the
//! differential tests. A crossbeam-parallel sweep keeps the crossover
//! benchmarks (experiment E4) honest by giving the baseline every
//! advantage.
//!
//! A Monte-Carlo estimator is included as the classic approximate
//! fallback for non-hierarchical queries.

use hq_arith::Rational;
use hq_db::{satisfiable, Database, Fact, Interner, Pattern};
use hq_query::Query;
use rand::Rng;

/// Evaluates whether `Q` holds on the world selected by `mask` over
/// `facts`.
fn world_satisfies(pattern: &Pattern, facts: &[(Fact, f64)], mask: u64) -> bool {
    let mut db = Database::new();
    for (i, (f, _)) in facts.iter().enumerate() {
        if mask >> i & 1 == 1 {
            db.insert(f.clone());
        } else {
            // Make sure the relation exists (with the right arity) even
            // if empty, so pattern validation stays meaningful.
            db.declare(f.rel, f.tuple.arity());
        }
    }
    satisfiable(&db, pattern).expect("pattern validated against full schema")
}

/// Exact `P(Q)` by sequential possible-world enumeration.
///
/// # Panics
/// Panics if more than 62 facts are supplied (the enumeration would
/// not terminate in any reasonable time anyway).
pub fn probability_exhaustive(q: &Query, interner: &Interner, facts: &[(Fact, f64)]) -> f64 {
    assert!(
        facts.len() <= 62,
        "possible-world enumeration beyond 62 facts"
    );
    let mut i2 = interner.clone();
    let pattern = q.to_pattern(&mut i2);
    let mut total = 0.0;
    for mask in 0..(1u64 << facts.len()) {
        if !world_satisfies(&pattern, facts, mask) {
            continue;
        }
        let mut p = 1.0;
        for (i, (_, pf)) in facts.iter().enumerate() {
            p *= if mask >> i & 1 == 1 { *pf } else { 1.0 - *pf };
        }
        total += p;
    }
    total
}

/// Exact `P(Q)` with exact rational probabilities — the strictest
/// oracle for the unifying algorithm's exact mode.
pub fn probability_exhaustive_exact(
    q: &Query,
    interner: &Interner,
    facts: &[(Fact, Rational)],
) -> Rational {
    assert!(facts.len() <= 30, "exact enumeration beyond 30 facts");
    let mut i2 = interner.clone();
    let pattern = q.to_pattern(&mut i2);
    let float_facts: Vec<(Fact, f64)> = facts.iter().map(|(f, _)| (f.clone(), 0.0)).collect();
    let one = Rational::one();
    let mut total = Rational::zero();
    for mask in 0..(1u64 << facts.len()) {
        if !world_satisfies(&pattern, &float_facts, mask) {
            continue;
        }
        let mut p = Rational::one();
        for (i, (_, pf)) in facts.iter().enumerate() {
            let factor = if mask >> i & 1 == 1 {
                pf.clone()
            } else {
                &one - pf
            };
            p = &p * &factor;
        }
        total = &total + &p;
    }
    total
}

/// Exact `P(Q)` by possible-world enumeration, parallelised with
/// std scoped threads over the top bits of the world mask.
///
/// # Panics
/// Panics if more than 62 facts are supplied.
pub fn probability_exhaustive_parallel(
    q: &Query,
    interner: &Interner,
    facts: &[(Fact, f64)],
    threads: usize,
) -> f64 {
    assert!(
        facts.len() <= 62,
        "possible-world enumeration beyond 62 facts"
    );
    let threads = threads.max(1);
    let mut i2 = interner.clone();
    let pattern = q.to_pattern(&mut i2);
    let total_worlds: u64 = 1u64 << facts.len();
    let chunk = total_worlds.div_ceil(threads as u64);
    let mut partials = vec![0.0f64; threads];
    std::thread::scope(|scope| {
        for (t, slot) in partials.iter_mut().enumerate() {
            let pattern = &pattern;
            scope.spawn(move || {
                let lo = chunk * t as u64;
                let hi = (lo + chunk).min(total_worlds);
                let mut acc = 0.0;
                for mask in lo..hi {
                    if !world_satisfies(pattern, facts, mask) {
                        continue;
                    }
                    let mut p = 1.0;
                    for (i, (_, pf)) in facts.iter().enumerate() {
                        p *= if mask >> i & 1 == 1 { *pf } else { 1.0 - *pf };
                    }
                    acc += p;
                }
                *slot = acc;
            });
        }
    });
    partials.iter().sum()
}

/// Monte-Carlo estimate of `P(Q)` from `samples` sampled worlds.
pub fn probability_monte_carlo(
    q: &Query,
    interner: &Interner,
    facts: &[(Fact, f64)],
    samples: u32,
    rng: &mut impl Rng,
) -> f64 {
    let mut i2 = interner.clone();
    let pattern = q.to_pattern(&mut i2);
    let mut hits = 0u32;
    for _ in 0..samples {
        let mut db = Database::new();
        for (f, p) in facts {
            if rng.gen::<f64>() < *p {
                db.insert(f.clone());
            } else {
                db.declare(f.rel, f.tuple.arity());
            }
        }
        if satisfiable(&db, &pattern).expect("validated") {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::db_from_ints;
    use hq_query::{q_hierarchical, q_non_hierarchical, Query};

    fn tid(db: &Database, p: f64) -> Vec<(Fact, f64)> {
        db.facts().into_iter().map(|f| (f, p)).collect()
    }

    #[test]
    fn single_atom_matches_closed_form() {
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2], &[3]])]);
        let p = probability_exhaustive(&q, &i, &tid(&db, 0.5));
        assert!((p - 0.875).abs() < 1e-12);
    }

    #[test]
    fn chain_query_hand_value() {
        // E(1,2) p=0.5, F(2,3) p=0.5 → P = 0.25.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let p = probability_exhaustive(&q, &i, &tid(&db, 0.5));
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn works_for_non_hierarchical_queries() {
        // The baseline is definitional — it handles R(X),S(X,Y),T(Y) fine.
        let q = q_non_hierarchical();
        let (db, i) = db_from_ints(&[("R", &[&[1]]), ("S", &[&[1, 2]]), ("T", &[&[2]])]);
        let p = probability_exhaustive(&q, &i, &tid(&db, 0.5));
        assert!((p - 0.125).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8]]),
        ]);
        let facts = tid(&db, 0.3);
        let seq = probability_exhaustive(&q, &i, &facts);
        for threads in [1, 2, 4] {
            let par = probability_exhaustive_parallel(&q, &i, &facts, threads);
            assert!((seq - par).abs() < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn exact_matches_float() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3], &[2, 4]])]);
        let facts = tid(&db, 0.25);
        let rational: Vec<(Fact, Rational)> = facts
            .iter()
            .map(|(f, _)| (f.clone(), Rational::ratio(1, 4)))
            .collect();
        let pf = probability_exhaustive(&q, &i, &facts);
        let pe = probability_exhaustive_exact(&q, &i, &rational);
        assert!((pf - pe.to_f64()).abs() < 1e-12);
        // Exact value: P(E) * P(F2 ∨ F4) = 1/4 * (1 - (3/4)^2) = 7/64.
        assert_eq!(pe, Rational::ratio(7, 64));
    }

    #[test]
    fn monte_carlo_converges() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let facts = tid(&db, 0.5);
        let mut rng = hq_db::generate::rng(17);
        let est = probability_monte_carlo(&q, &i, &facts, 20_000, &mut rng);
        assert!((est - 0.25).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn empty_fact_list_gives_zero() {
        let q = q_hierarchical();
        let i = Interner::new();
        assert_eq!(probability_exhaustive(&q, &i, &[]), 0.0);
    }
}
