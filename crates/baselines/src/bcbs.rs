//! Balanced Complete Bipartite Subgraph (BCBS) and the Theorem 4.4
//! reduction to Bag-Set Maximization Decision.
//!
//! BCBS — given an undirected self-loop-free graph `G` and `k`, decide
//! whether `G` contains a complete bipartite subgraph with both parts
//! of size `k` — is NP-complete [Garey & Johnson, GT24] and W[1]-hard
//! in `k` [Lin 2018]. Theorem 4.4 reduces it to the decision version of
//! Bag-Set Maximization for *any* non-hierarchical SJF-BCQ: encode the
//! edges into the witness atom `S(A,B,·)`, let repairs buy `R(A,·)` and
//! `T(B,·)` facts, and ask for value `k²` within budget `2k`.
//!
//! This module makes the hardness side of the dichotomy executable:
//! a brute-force BCBS solver, the generic reduction, and (in the test
//! and bench suites) the answer-preservation check between the two.

use hq_db::generate::Graph;
use hq_db::{Database, Interner, Tuple, Value};
use hq_query::{non_hierarchical_witness, Query, Var};

/// Brute-force BCBS decision: does `g` contain a `K_{k,k}`?
///
/// Enumerates `k`-subsets as the first part and checks for `k` common
/// neighbours; self-loop-freeness makes the parts automatically
/// disjoint.
pub fn bcbs_decision(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true; // the empty biclique always exists
    }
    if g.n < 2 * k {
        return false;
    }
    // Adjacency sets as bitmasks (n ≤ 64 for the brute-force range).
    assert!(g.n <= 64, "brute-force BCBS beyond 64 vertices");
    let mut adj = vec![0u64; g.n];
    for &(u, v) in &g.edges {
        adj[u as usize] |= 1 << v;
        adj[v as usize] |= 1 << u;
    }
    let mut subset: Vec<usize> = Vec::with_capacity(k);
    fn rec(adj: &[u64], n: usize, k: usize, start: usize, subset: &mut Vec<usize>) -> bool {
        if subset.len() == k {
            let mut common = u64::MAX >> (64 - n);
            for &u in subset.iter() {
                common &= adj[u];
            }
            return common.count_ones() as usize >= k;
        }
        for u in start..n {
            subset.push(u);
            if rec(adj, n, k, u + 1, subset) {
                return true;
            }
            subset.pop();
        }
        false
    }
    rec(&adj, g.n, k, 0, &mut subset)
}

/// A constructed Bag-Set Maximization Decision instance.
#[derive(Debug, Clone)]
pub struct BsmDecisionInstance {
    /// The database to repair.
    pub d: Database,
    /// The repair database.
    pub d_r: Database,
    /// The repair budget `θ = 2k`.
    pub theta: usize,
    /// The decision threshold `τ = k²`.
    pub tau: u64,
    /// Interner binding relation names and values.
    pub interner: Interner,
}

/// The Theorem 4.4 reduction: builds `(D, D_r, θ, τ)` from `(G, k)`
/// for any *non-hierarchical* SJF-BCQ `q`.
///
/// Every variable other than the witness pair `A, B` is pinned to a
/// fixed vertex `a`; the edge relation is encoded into the atoms
/// containing `A` and `B` jointly (and all remaining non-`R`/`T`
/// atoms), while the repair database offers `R`-facts per vertex value
/// of `A` and `T`-facts per vertex value of `B`.
///
/// # Panics
/// Panics if `q` is hierarchical (the reduction needs the witness).
pub fn reduce_bcbs_to_bsm(q: &Query, g: &Graph, k: usize) -> BsmDecisionInstance {
    let w = non_hierarchical_witness(q).expect("reduction requires a non-hierarchical query");
    let mut interner = Interner::new();
    let mut d = Database::new();
    let mut d_r = Database::new();
    // Fixed vertex `a`: any vertex; 0 works whenever the graph is
    // non-empty. (For an empty graph both databases stay empty and the
    // instance is a trivial "no" for k ≥ 1.)
    let a_fix: i64 = 0;
    let assign = |atom_vars: &[Var], u: i64, v: i64| -> Tuple {
        atom_vars
            .iter()
            .map(|&x| {
                Value::Int(if x == w.a {
                    u
                } else if x == w.b {
                    v
                } else {
                    a_fix
                })
            })
            .collect()
    };
    for (idx, atom) in q.atoms().iter().enumerate() {
        let rel = interner.intern(&atom.rel);
        if idx == w.r_atom {
            // Repair facts: A ranges over all vertices (B does not
            // occur in this atom, by the witness shape).
            d_r.declare(rel, atom.vars.len());
            for u in 0..g.n as i64 {
                d_r.insert_tuple(rel, assign(&atom.vars, u, a_fix));
            }
        } else if idx == w.t_atom {
            d_r.declare(rel, atom.vars.len());
            for v in 0..g.n as i64 {
                d_r.insert_tuple(rel, assign(&atom.vars, a_fix, v));
            }
        } else {
            // Edge-encoding facts (both orientations of each edge).
            d.declare(rel, atom.vars.len());
            for &(u, v) in &g.edges {
                d.insert_tuple(rel, assign(&atom.vars, i64::from(u), i64::from(v)));
                d.insert_tuple(rel, assign(&atom.vars, i64::from(v), i64::from(u)));
            }
        }
    }
    BsmDecisionInstance {
        d,
        d_r,
        theta: 2 * k,
        tau: (k * k) as u64,
        interner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsm_bf::decide_bruteforce;
    use hq_db::generate::{planted_biclique, random_graph, rng};
    use hq_query::{q_non_hierarchical, Query};

    #[test]
    fn bcbs_detects_planted_biclique() {
        let g = planted_biclique(10, 3, 0.0, &mut rng(1));
        assert!(bcbs_decision(&g, 3));
        assert!(bcbs_decision(&g, 2));
        assert!(bcbs_decision(&g, 0));
    }

    #[test]
    fn bcbs_rejects_sparse_graph() {
        // A single edge has no K_{2,2}.
        let g = Graph {
            n: 4,
            edges: vec![(0, 1)],
        };
        assert!(bcbs_decision(&g, 1)); // one edge IS a K_{1,1}
        assert!(!bcbs_decision(&g, 2));
    }

    #[test]
    fn bcbs_complete_graph() {
        // K_6 contains K_{3,3}.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                edges.push((u, v));
            }
        }
        let g = Graph { n: 6, edges };
        assert!(bcbs_decision(&g, 3));
        assert!(!bcbs_decision(&g, 4), "needs 8 vertices");
    }

    #[test]
    fn reduction_preserves_answers_canonical_query() {
        // Theorem 4.4's equivalence, checked end-to-end on random
        // graphs for the canonical non-hierarchical query.
        let q = q_non_hierarchical();
        let mut r = rng(7);
        for trial in 0..12 {
            let n = 5 + (trial % 3);
            let g = random_graph(n, 0.5, &mut r);
            for k in 1..=2usize {
                let inst = reduce_bcbs_to_bsm(&q, &g, k);
                let bsm =
                    decide_bruteforce(&q, &inst.interner, &inst.d, &inst.d_r, inst.theta, inst.tau);
                assert_eq!(
                    bcbs_decision(&g, k),
                    bsm,
                    "trial {trial}, n={n}, k={k}, edges={:?}",
                    g.edges
                );
            }
        }
    }

    #[test]
    fn reduction_preserves_answers_padded_query() {
        // A non-hierarchical query with extra atoms (the P_i of the
        // proof) — including one carrying the witness variable A.
        let q = Query::new(&[
            ("R", &["A", "U"]),
            ("S", &["A", "B"]),
            ("T", &["B", "W"]),
            ("P", &["A", "V"]),
        ])
        .unwrap();
        assert!(hq_query::non_hierarchical_witness(&q).is_some());
        let mut r = rng(11);
        for trial in 0..6 {
            let g = random_graph(5, 0.6, &mut r);
            let k = 2;
            let inst = reduce_bcbs_to_bsm(&q, &g, k);
            let bsm =
                decide_bruteforce(&q, &inst.interner, &inst.d, &inst.d_r, inst.theta, inst.tau);
            assert_eq!(bcbs_decision(&g, k), bsm, "trial {trial}");
        }
    }

    #[test]
    fn planted_instance_is_yes_through_reduction() {
        let q = q_non_hierarchical();
        let g = planted_biclique(8, 2, 0.0, &mut rng(3));
        let inst = reduce_bcbs_to_bsm(&q, &g, 2);
        assert!(decide_bruteforce(
            &q,
            &inst.interner,
            &inst.d,
            &inst.d_r,
            inst.theta,
            inst.tau
        ));
    }

    #[test]
    fn empty_graph_is_no_for_positive_k() {
        let q = q_non_hierarchical();
        let g = Graph {
            n: 4,
            edges: vec![],
        };
        let inst = reduce_bcbs_to_bsm(&q, &g, 1);
        assert!(!decide_bruteforce(
            &q,
            &inst.interner,
            &inst.d,
            &inst.d_r,
            inst.theta,
            inst.tau
        ));
        assert!(!bcbs_decision(&g, 1));
    }
}
