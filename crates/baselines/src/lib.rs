//! # hq-baselines — definitional oracles and the hardness reduction
//!
//! The exponential algorithms the paper's theorems quantify over,
//! implemented directly from the definitions:
//!
//! * [`worlds`] — exact PQE by possible-world enumeration (sequential,
//!   crossbeam-parallel, and exact-rational variants) plus a
//!   Monte-Carlo estimator;
//! * [`bsm_bf`] — Bag-Set Maximization by repair-subset enumeration
//!   (works for any SJF-BCQ, including non-hierarchical ones);
//! * [`shapley_bf`] — `#Sat` by subset enumeration and Shapley values
//!   by the verbatim permutation definition and by the subset-sum
//!   formula;
//! * [`bcbs`] — a brute-force Balanced-Complete-Bipartite-Subgraph
//!   solver and the generic Theorem 4.4 reduction BCBS → Bag-Set
//!   Maximization Decision.
//!
//! Every differential test in the workspace pits the unifying
//! algorithm against these oracles on random instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bcbs;
pub mod bsm_bf;
pub mod shapley_bf;
pub mod worlds;

pub use bcbs::{bcbs_decision, reduce_bcbs_to_bsm, BsmDecisionInstance};
pub use bsm_bf::{decide_bruteforce, maximize_bruteforce, BruteBsm};
pub use shapley_bf::{sat_counts_bruteforce, shapley_by_permutations, shapley_by_subsets};
pub use worlds::{
    probability_exhaustive, probability_exhaustive_exact, probability_exhaustive_parallel,
    probability_monte_carlo,
};
