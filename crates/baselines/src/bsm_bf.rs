//! Brute-force Bag-Set Maximization by repair-subset enumeration.
//!
//! The definitional algorithm: try every subset of `D_r \ D` of size
//! `≤ θ` (`Σ_{i≤θ} C(|D_r|, i)` candidates) and take the best bag-set
//! value. Works for *any* SJF-BCQ — including the non-hierarchical ones
//! where this exponential search is essentially unavoidable
//! (Theorem 4.4) — and serves as the correctness oracle for the
//! unifying algorithm on hierarchical queries.

use hq_db::{count_matches, Database, Fact, Interner, Pattern};
use hq_query::Query;

/// The brute-force result: best value and one optimal repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BruteBsm {
    /// The maximum bag-set value `Q(D')`.
    pub optimum: u64,
    /// The facts added by one optimal repair (not necessarily unique).
    pub witness: Vec<Fact>,
}

fn search(
    pattern: &Pattern,
    base: &mut Database,
    candidates: &[Fact],
    budget: usize,
    chosen: &mut Vec<Fact>,
    best: &mut BruteBsm,
) {
    let value = count_matches(base, pattern).expect("validated pattern");
    if value > best.optimum {
        best.optimum = value;
        best.witness = chosen.clone();
    }
    if budget == 0 {
        return;
    }
    for (i, f) in candidates.iter().enumerate() {
        base.insert(f.clone());
        chosen.push(f.clone());
        search(
            pattern,
            base,
            &candidates[i + 1..],
            budget - 1,
            chosen,
            best,
        );
        chosen.pop();
        base.remove(f);
    }
}

/// Solves Bag-Set Maximization exactly by subset enumeration.
///
/// # Panics
/// Panics if the candidate pool `D_r \ D` exceeds 30 facts (the
/// enumeration would be astronomically slow).
pub fn maximize_bruteforce(
    q: &Query,
    interner: &Interner,
    d: &Database,
    d_r: &Database,
    theta: usize,
) -> BruteBsm {
    let mut i2 = interner.clone();
    let pattern = q.to_pattern(&mut i2);
    let candidates: Vec<Fact> = d_r.facts().into_iter().filter(|f| !d.contains(f)).collect();
    assert!(
        candidates.len() <= 30,
        "brute-force BSM beyond 30 candidate facts"
    );
    // Make sure every query relation exists in the working database so
    // pattern validation is stable even when D misses a relation.
    let mut base = d.clone();
    for f in &candidates {
        base.declare(f.rel, f.tuple.arity());
    }
    let mut best = BruteBsm {
        optimum: count_matches(&base, &pattern).expect("validated pattern"),
        witness: Vec::new(),
    };
    let mut chosen = Vec::new();
    search(
        &pattern,
        &mut base,
        &candidates,
        theta,
        &mut chosen,
        &mut best,
    );
    best
}

/// The Bag-Set Maximization *Decision* problem (Definition 4.2): is a
/// value of at least `tau` reachable within budget `theta`?
pub fn decide_bruteforce(
    q: &Query,
    interner: &Interner,
    d: &Database,
    d_r: &Database,
    theta: usize,
    tau: u64,
) -> bool {
    maximize_bruteforce(q, interner, d, d_r, theta).optimum >= tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::{db_from_ints, Tuple};
    use hq_query::{example_query, q_non_hierarchical, Query};

    fn fig1() -> (Database, Database, Interner) {
        let (d, mut i) = db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ]);
        let r = i.intern("R");
        let t = i.intern("T");
        let mut d_r = Database::new();
        d_r.insert_tuple(r, Tuple::ints(&[1, 6]));
        d_r.insert_tuple(r, Tuple::ints(&[1, 7]));
        d_r.insert_tuple(t, Tuple::ints(&[1, 1, 4]));
        d_r.insert_tuple(t, Tuple::ints(&[1, 2, 9]));
        (d, d_r, i)
    }

    #[test]
    fn figure_1_bruteforce_agrees_with_paper() {
        let (d, d_r, i) = fig1();
        let q = example_query();
        let res = maximize_bruteforce(&q, &i, &d, &d_r, 2);
        assert_eq!(res.optimum, 4);
        assert_eq!(res.witness.len(), 2);
        // Every optimal repair pairs one new R-fact with one new T-fact
        // (the paper exhibits R(1,6) + T(1,2,9); R(1,6) + T(1,1,4) ties).
        let names: Vec<String> = res
            .witness
            .iter()
            .map(|f| f.display(&i).to_string())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("R(1, ")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("T(1, ")), "{names:?}");
    }

    #[test]
    fn decision_thresholds() {
        let (d, d_r, i) = fig1();
        let q = example_query();
        assert!(decide_bruteforce(&q, &i, &d, &d_r, 2, 4));
        assert!(!decide_bruteforce(&q, &i, &d, &d_r, 2, 5));
        assert!(decide_bruteforce(&q, &i, &d, &d_r, 0, 1));
        assert!(!decide_bruteforce(&q, &i, &d, &d_r, 0, 2));
    }

    #[test]
    fn handles_non_hierarchical_queries() {
        // R(X), S(X,Y), T(Y): D has S(1,2) only; repair can add R(1), T(2).
        let q = q_non_hierarchical();
        let (d, mut i) = db_from_ints(&[("S", &[&[1, 2]])]);
        let r = i.intern("R");
        let t = i.intern("T");
        let mut d_r = Database::new();
        d_r.insert_tuple(r, Tuple::ints(&[1]));
        d_r.insert_tuple(t, Tuple::ints(&[2]));
        let res = maximize_bruteforce(&q, &i, &d, &d_r, 2);
        assert_eq!(res.optimum, 1);
        let res1 = maximize_bruteforce(&q, &i, &d, &d_r, 1);
        assert_eq!(res1.optimum, 0, "one fact is not enough");
    }

    #[test]
    fn empty_budget_no_search() {
        let (d, d_r, i) = fig1();
        let q = example_query();
        let res = maximize_bruteforce(&q, &i, &d, &d_r, 0);
        assert_eq!(res.optimum, 1);
        assert!(res.witness.is_empty());
    }

    #[test]
    fn duplicate_repair_facts_are_free() {
        let (d, i) = db_from_ints(&[("R", &[&[1]])]);
        let r = i.get("R").unwrap();
        let mut d_r = Database::new();
        d_r.insert_tuple(r, Tuple::ints(&[1])); // already in D
        d_r.insert_tuple(r, Tuple::ints(&[2]));
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let res = maximize_bruteforce(&q, &i, &d, &d_r, 1);
        assert_eq!(res.optimum, 2);
    }
}
