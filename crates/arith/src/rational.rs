//! Exact signed rational numbers over [`Natural`].
//!
//! Shapley values (Definition 5.12 / Eq. (14) of the paper) are exact
//! rationals whose denominators scale like `|D_n|!`; computing them in
//! floating point loses all precision long before the instance sizes we
//! benchmark. [`Rational`] keeps every intermediate value exact, and the
//! exact-probability PQE oracle uses it as well.

use crate::natural::Natural;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number: `sign * num / den` with `den > 0`, always in
/// lowest terms, and zero represented canonically as `+0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    neg: bool,
    num: Natural,
    den: Natural,
}

impl Rational {
    /// The rational zero.
    pub fn zero() -> Self {
        Rational {
            neg: false,
            num: Natural::zero(),
            den: Natural::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        Rational {
            neg: false,
            num: Natural::one(),
            den: Natural::one(),
        }
    }

    /// Builds `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn from_naturals(num: Natural, den: Natural) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        Rational {
            neg: false,
            num,
            den,
        }
        .reduced()
    }

    /// Builds the integer `v`.
    pub fn from_u64(v: u64) -> Self {
        Rational {
            neg: false,
            num: Natural::from(v),
            den: Natural::one(),
        }
    }

    /// Builds the integer `v` (signed).
    pub fn from_i64(v: i64) -> Self {
        Rational {
            neg: v < 0,
            num: Natural::from(v.unsigned_abs()),
            den: Natural::one(),
        }
        .reduced()
    }

    /// Builds `p / q` from machine words.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn ratio(p: u64, q: u64) -> Self {
        Self::from_naturals(Natural::from(p), Natural::from(q))
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// The numerator magnitude (always in lowest terms).
    pub fn numer(&self) -> &Natural {
        &self.num
    }

    /// The denominator (always positive and in lowest terms).
    pub fn denom(&self) -> &Natural {
        &self.den
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let mag = self.num.to_f64() / self.den.to_f64();
        if self.neg {
            -mag
        } else {
            mag
        }
    }

    fn reduced(mut self) -> Self {
        if self.num.is_zero() {
            return Rational::zero();
        }
        let g = self.num.gcd(&self.den);
        if !g.is_one() {
            self.num = divide_exact(&self.num, &g);
            self.den = divide_exact(&self.den, &g);
        }
        self
    }

    /// Magnitude-only addition of two reduced fractions, ignoring signs.
    fn add_magnitudes(a: &Rational, b: &Rational) -> (Natural, Natural) {
        let num = a.num.mul_ref(&b.den) + b.num.mul_ref(&a.den);
        let den = a.den.mul_ref(&b.den);
        (num, den)
    }

    /// Magnitude-only subtraction `|a| - |b|`; returns sign with result.
    fn sub_magnitudes(a: &Rational, b: &Rational) -> (bool, Natural, Natural) {
        let lhs = a.num.mul_ref(&b.den);
        let rhs = b.num.mul_ref(&a.den);
        let den = a.den.mul_ref(&b.den);
        match lhs.cmp(&rhs) {
            Ordering::Less => (true, rhs.checked_sub(&lhs).expect("ordered sub"), den),
            _ => (false, lhs.checked_sub(&rhs).expect("ordered sub"), den),
        }
    }

    /// Exact reciprocal.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational {
            neg: self.neg,
            num: self.den.clone(),
            den: self.num.clone(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            neg: false,
            num: self.num.clone(),
            den: self.den.clone(),
        }
    }
}

/// General big division used only for GCD reduction, where divisibility is
/// guaranteed. Implemented via binary long division to avoid requiring a
/// full multiprecision divider.
fn divide_exact(a: &Natural, d: &Natural) -> Natural {
    debug_assert!(!d.is_zero());
    if a.is_zero() {
        return Natural::zero();
    }
    if let (Some(a128), Some(d128)) = (a.to_u128(), d.to_u128()) {
        debug_assert_eq!(a128 % d128, 0);
        return Natural::from(a128 / d128);
    }
    // Binary long division: find q such that q*d == a.
    let shift = a.bit_len() - d.bit_len();
    let mut divisor = d.clone();
    for _ in 0..shift {
        divisor.shl1_assign();
    }
    let mut rem = a.clone();
    let mut q = Natural::zero();
    for _ in 0..=shift {
        q.shl1_assign();
        if let Some(r) = rem.checked_sub(&divisor) {
            rem = r;
            q.add_assign_ref(&Natural::one());
        }
        divisor.shr1_assign();
    }
    debug_assert!(rem.is_zero(), "divide_exact: inputs were not divisible");
    q
}

impl Add<&Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.neg == rhs.neg {
            let (num, den) = Rational::add_magnitudes(self, rhs);
            Rational {
                neg: self.neg,
                num,
                den,
            }
            .reduced()
        } else {
            let (flip, num, den) = Rational::sub_magnitudes(self, rhs);
            let neg = self.neg ^ flip;
            Rational { neg, num, den }.reduced()
        }
    }
}

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs.clone())
    }
}

impl Mul<&Rational> for &Rational {
    type Output = Rational;
    // Sign XOR and multiply-by-reciprocal are the intended arithmetic here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, rhs: &Rational) -> Rational {
        Rational {
            neg: self.neg ^ rhs.neg,
            num: self.num.mul_ref(&rhs.num),
            den: self.den.mul_ref(&rhs.den),
        }
        .reduced()
    }
}

impl Div<&Rational> for &Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.recip()
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        &self / &rhs
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        if self.is_zero() {
            self
        } else {
            Rational {
                neg: !self.neg,
                ..self
            }
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (neg, _) => {
                let lhs = self.num.mul_ref(&other.den);
                let rhs = other.num.mul_ref(&self.den);
                if neg {
                    rhs.cmp(&lhs)
                } else {
                    lhs.cmp(&rhs)
                }
            }
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.neg { "-" } else { "" };
        if self.den.is_one() {
            write!(f, "{sign}{}", self.num)
        } else {
            write!(f, "{sign}{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: u64) -> Rational {
        let neg = p < 0;
        let mag = Rational::ratio(p.unsigned_abs(), q);
        if neg {
            -mag
        } else {
            mag
        }
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(Rational::ratio(2, 4), Rational::ratio(1, 2));
        assert_eq!(Rational::ratio(0, 7), Rational::zero());
        assert_eq!(Rational::ratio(9, 3).to_string(), "3");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::ratio(1, 0);
    }

    #[test]
    fn arithmetic_small_cases() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(1, 3) - r(1, 2), r(-1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
    }

    #[test]
    fn signed_arithmetic() {
        assert_eq!(r(-1, 2) + r(-1, 2), r(-1, 1));
        assert_eq!(r(-1, 2) + r(1, 2), Rational::zero());
        assert_eq!(r(-1, 2) * r(-1, 2), r(1, 4));
        assert_eq!(r(-1, 2) * r(1, 2), r(-1, 4));
        assert_eq!(-Rational::zero(), Rational::zero());
    }

    #[test]
    fn from_i64_roundtrip() {
        assert_eq!(Rational::from_i64(-7).to_f64(), -7.0);
        assert_eq!(Rational::from_i64(0), Rational::zero());
    }

    #[test]
    fn comparison_total_order() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(1, 100));
        assert_eq!(r(3, 9), r(1, 3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-3, 6).to_string(), "-1/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(Rational::zero().to_string(), "0");
    }

    #[test]
    fn to_f64_matches() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert!((r(-7, 8).to_f64() + 0.875).abs() < 1e-15);
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(r(2, 3).recip(), r(3, 2));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
        assert_eq!(r(-2, 3).abs(), r(2, 3));
    }

    #[test]
    fn big_values_stay_exact() {
        // sum_{k=1..50} 1/k as an exact fraction, then verify against a
        // second evaluation order.
        let mut forward = Rational::zero();
        for k in 1..=50u64 {
            forward = &forward + &Rational::ratio(1, k);
        }
        let mut backward = Rational::zero();
        for k in (1..=50u64).rev() {
            backward = &backward + &Rational::ratio(1, k);
        }
        assert_eq!(forward, backward);
        assert!((forward.to_f64() - 4.4992053383).abs() < 1e-9);
    }

    #[test]
    fn divide_exact_large() {
        let a = Natural::from(2u64).pow(200);
        let d = Natural::from(2u64).pow(77);
        assert_eq!(super::divide_exact(&a, &d), Natural::from(2u64).pow(123));
    }
}
