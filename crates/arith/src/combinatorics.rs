//! Exact combinatorics over [`Natural`]: factorials, binomial
//! coefficients, and the Shapley permutation weights
//! `k! (n - k - 1)! / n!` from Section 5.6 of the paper.

use crate::natural::Natural;
use crate::rational::Rational;

/// Exact factorial `n!`.
pub fn factorial(n: u64) -> Natural {
    let mut acc = Natural::one();
    for k in 2..=n {
        acc = acc.mul_small(k);
    }
    acc
}

/// Exact binomial coefficient `C(n, k)`.
///
/// Uses the multiplicative formula with exact division at every step
/// (each intermediate value is itself a binomial coefficient, hence the
/// divisions are exact).
pub fn binomial(n: u64, k: u64) -> Natural {
    if k > n {
        return Natural::zero();
    }
    let k = k.min(n - k);
    let mut acc = Natural::one();
    for i in 0..k {
        acc = acc.mul_small(n - i).div_exact_small(i + 1);
    }
    acc
}

/// The full Pascal row `[C(n,0), ..., C(n,n)]`.
pub fn binomial_row(n: u64) -> Vec<Natural> {
    let mut row = Vec::with_capacity(n as usize + 1);
    let mut acc = Natural::one();
    row.push(acc.clone());
    for i in 0..n {
        acc = acc.mul_small(n - i).div_exact_small(i + 1);
        row.push(acc.clone());
    }
    row
}

/// The Shapley coefficient `k! (n - k - 1)! / n!` as an exact rational.
///
/// This is the probability that, in a uniformly random permutation of `n`
/// endogenous facts, a designated fact arrives in position `k + 1` — the
/// weight each `#Sat(k)` difference receives in the reduction of
/// Section 5.6.
///
/// # Panics
/// Panics if `k >= n` (there is no position `k + 1` among `n` facts).
pub fn shapley_weight(n: u64, k: u64) -> Rational {
    assert!(k < n, "shapley_weight requires k < n (got k={k}, n={n})");
    // k! (n-k-1)! / n! == 1 / (n * C(n-1, k))
    let den = binomial(n - 1, k).mul_small(n);
    Rational::from_naturals(Natural::one(), den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_small() {
        assert_eq!(factorial(0).to_u64(), Some(1));
        assert_eq!(factorial(1).to_u64(), Some(1));
        assert_eq!(factorial(5).to_u64(), Some(120));
        assert_eq!(factorial(20).to_u64(), Some(2_432_902_008_176_640_000));
    }

    #[test]
    fn factorial_large_digits() {
        // 100! has 158 decimal digits and starts with 9332621544...
        let f = factorial(100).to_string();
        assert_eq!(f.len(), 158);
        assert!(f.starts_with("9332621544"));
    }

    #[test]
    fn binomial_small() {
        assert_eq!(binomial(0, 0).to_u64(), Some(1));
        assert_eq!(binomial(5, 2).to_u64(), Some(10));
        assert_eq!(binomial(10, 10).to_u64(), Some(1));
        assert_eq!(binomial(10, 11), Natural::zero());
        assert_eq!(binomial(52, 5).to_u64(), Some(2_598_960));
    }

    #[test]
    fn binomial_symmetry_and_pascal() {
        for n in 0..20u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
                if n > 0 && k > 0 && k < n {
                    let pascal = binomial(n - 1, k - 1) + binomial(n - 1, k);
                    assert_eq!(binomial(n, k), pascal);
                }
            }
        }
    }

    #[test]
    fn binomial_row_sums_to_pow2() {
        for n in 0..64u64 {
            let mut sum = Natural::zero();
            for c in binomial_row(n) {
                sum.add_assign_ref(&c);
            }
            assert_eq!(sum, Natural::from(2u64).pow(n as u32));
        }
    }

    #[test]
    fn binomial_exceeds_u64() {
        // C(100, 50) ~ 1.008e29
        let c = binomial(100, 50);
        assert!(c.to_u64().is_none());
        assert_eq!(c.to_string(), "100891344545564193334812497256");
    }

    #[test]
    fn shapley_weights_sum_to_one() {
        // Summing the arrival-position probabilities over all subsets:
        // sum_k C(n-1, k) * k!(n-k-1)!/n! == 1.
        for n in 1..=12u64 {
            let mut total = Rational::zero();
            for k in 0..n {
                let count = Rational::from_naturals(binomial(n - 1, k), Natural::one());
                total = &total + &(&count * &shapley_weight(n, k));
            }
            assert_eq!(total, Rational::one());
        }
    }

    #[test]
    fn shapley_weight_matches_definition() {
        // Direct k!(n-k-1)!/n! comparison.
        for n in 1..=10u64 {
            for k in 0..n {
                let direct = Rational::from_naturals(
                    factorial(k).mul_ref(&factorial(n - k - 1)),
                    factorial(n),
                );
                assert_eq!(shapley_weight(n, k), direct);
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires k < n")]
    fn shapley_weight_rejects_k_ge_n() {
        let _ = shapley_weight(3, 3);
    }
}
