//! Arbitrary-precision natural numbers.
//!
//! [`Natural`] is an unsigned big integer stored as little-endian `u64`
//! limbs. The representation is always *normalized*: no trailing zero
//! limbs, and zero is the empty limb vector.
//!
//! The Shapley-value instantiation of the unifying algorithm counts
//! subsets of the endogenous database (`#Sat`, Definition 5.13 of the
//! paper), and those counts reach `C(n, n/2)` which overflows any fixed
//! machine integer long before the instance sizes used in the
//! experiments. Shapley values themselves are exact rationals with
//! `n!`-scale denominators, built on top of this type in
//! [`crate::rational`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul};
use std::str::FromStr;

/// An arbitrary-precision natural number (unsigned big integer).
///
/// Cheap to clone for small magnitudes (a single `Vec` allocation), with
/// schoolbook multiplication — entirely adequate for the counting
/// workloads in this crate, where numbers have at most a few hundred
/// decimal digits.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    /// Little-endian base-2^64 limbs; normalized (no trailing zeros).
    limbs: Vec<u64>,
}

impl Natural {
    /// The natural number zero.
    #[inline]
    pub fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The natural number one.
    #[inline]
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Returns `true` if this number is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if this number is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the number is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Drops trailing zero limbs to restore the normalized form.
    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Lossy conversion to `f64`.
    ///
    /// Values above `f64::MAX` become `f64::INFINITY`. The top 128 bits
    /// are used, so the result is correctly rounded to well under one ulp
    /// of relative error — plenty for reporting probabilities and ratios.
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => (self.limbs[1] as f64) * 2f64.powi(64) + self.limbs[0] as f64,
            n => {
                let hi = self.limbs[n - 1] as f64;
                let mid = self.limbs[n - 2] as f64;
                (hi * 2f64.powi(64) + mid) * 2f64.powi(64 * (n as i32 - 2))
            }
        }
    }

    /// In-place addition.
    pub fn add_assign_ref(&mut self, rhs: &Natural) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(rhs.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let r = *rhs.limbs.get(i).unwrap_or(&0);
            let (s1, c1) = self.limbs[i].overflowing_add(r);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtraction, returning `None` on underflow (`self < rhs`).
    pub fn checked_sub(&self, rhs: &Natural) -> Option<Natural> {
        if self < rhs {
            return None;
        }
        let mut out = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let r = *rhs.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = limb.overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(
            borrow, 0,
            "checked_sub: borrow out of range after cmp guard"
        );
        let mut n = Natural { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Multiplication by a machine word.
    pub fn mul_small(&self, m: u64) -> Natural {
        if m == 0 || self.is_zero() {
            return Natural::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let p = (l as u128) * (m as u128) + carry;
            out.push(p as u64);
            carry = p >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Natural { limbs: out }
    }

    /// Schoolbook multiplication.
    pub fn mul_ref(&self, rhs: &Natural) -> Natural {
        if self.is_zero() || rhs.is_zero() {
            return Natural::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let idx = i + j;
                let p = (a as u128) * (b as u128) + (out[idx] as u128) + carry;
                out[idx] = p as u64;
                carry = p >> 64;
            }
            let mut idx = i + rhs.limbs.len();
            while carry != 0 {
                let p = (out[idx] as u128) + carry;
                out[idx] = p as u64;
                carry = p >> 64;
                idx += 1;
            }
        }
        let mut n = Natural { limbs: out };
        n.normalize();
        n
    }

    /// Division by a machine word; returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_small(&self, d: u64) -> (Natural, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut n = Natural { limbs: q };
        n.normalize();
        (n, rem as u64)
    }

    /// Halves the number in place (shift right by one bit).
    pub fn shr1_assign(&mut self) {
        let mut carry = 0u64;
        for l in self.limbs.iter_mut().rev() {
            let new_carry = *l & 1;
            *l = (*l >> 1) | (carry << 63);
            carry = new_carry;
        }
        self.normalize();
    }

    /// Doubles the number in place (shift left by one bit).
    pub fn shl1_assign(&mut self) {
        let mut carry = 0u64;
        for l in self.limbs.iter_mut() {
            let new_carry = *l >> 63;
            *l = (*l << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Natural) -> Natural {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        // Factor out common powers of two.
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a.shr1_assign();
            b.shr1_assign();
            shift += 1;
        }
        while a.is_even() {
            a.shr1_assign();
        }
        loop {
            while b.is_even() {
                b.shr1_assign();
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b
                .checked_sub(&a)
                .expect("binary gcd: b >= a after ordering swap");
            if b.is_zero() {
                break;
            }
        }
        for _ in 0..shift {
            a.shl1_assign();
        }
        a
    }

    /// Exact division: divides `self` by `d`, panicking if `d` does not
    /// divide `self` exactly. Used by combinatorics where divisibility is
    /// an invariant (e.g. the running product in `binomial`).
    pub fn div_exact_small(&self, d: u64) -> Natural {
        let (q, r) = self.div_rem_small(d);
        assert_eq!(r, 0, "div_exact_small: {d} does not divide the operand");
        q
    }

    /// Raises `self` to a small power.
    pub fn pow(&self, mut exp: u32) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            base = base.mul_ref(&base);
            exp >>= 1;
        }
        acc
    }
}

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        if v == 0 {
            Natural::zero()
        } else {
            Natural { limbs: vec![v] }
        }
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = Natural {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }
}

impl From<usize> for Natural {
    fn from(v: usize) -> Self {
        Natural::from(v as u64)
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl Add<&Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(mut self, rhs: Natural) -> Natural {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        self.add_assign_ref(rhs);
    }
}

impl Mul<&Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        self.mul_ref(rhs)
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        self.mul_ref(&rhs)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel off 19 decimal digits at a time (10^19 < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().copied().unwrap_or(0).to_string();
        for &c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Natural({self})")
    }
}

/// Error parsing a decimal string into a [`Natural`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNaturalError;

impl fmt::Display for ParseNaturalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal natural number")
    }
}

impl std::error::Error for ParseNaturalError {}

impl FromStr for Natural {
    type Err = ParseNaturalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNaturalError);
        }
        let mut out = Natural::zero();
        for b in s.bytes() {
            out = out.mul_small(10);
            out.add_assign_ref(&Natural::from((b - b'0') as u64));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(Natural::zero().is_zero());
        assert!(!Natural::one().is_zero());
        assert!(Natural::one().is_one());
        assert_eq!(Natural::zero().to_u64(), Some(0));
        assert_eq!(Natural::one().to_u64(), Some(1));
        assert_eq!(Natural::default(), Natural::zero());
    }

    #[test]
    fn add_small_values() {
        assert_eq!((&nat(2) + &nat(3)).to_u64(), Some(5));
        assert_eq!((&nat(0) + &nat(7)).to_u64(), Some(7));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = nat(u64::MAX as u128);
        let b = nat(1);
        assert_eq!((&a + &b).to_u128(), Some(u64::MAX as u128 + 1));
        let c = nat(u128::MAX);
        let d = &c + &nat(1);
        assert_eq!(d.bit_len(), 129);
        assert_eq!(d.to_u128(), None);
    }

    #[test]
    fn checked_sub_basics() {
        assert_eq!(nat(10).checked_sub(&nat(3)).unwrap().to_u64(), Some(7));
        assert_eq!(nat(3).checked_sub(&nat(3)).unwrap(), Natural::zero());
        assert!(nat(3).checked_sub(&nat(4)).is_none());
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let big = nat(1u128 << 64);
        let r = big.checked_sub(&nat(1)).unwrap();
        assert_eq!(r.to_u128(), Some((1u128 << 64) - 1));
    }

    #[test]
    fn mul_matches_u128() {
        let a = nat(123_456_789_012_345);
        let b = nat(987_654_321_098);
        assert_eq!(
            a.mul_ref(&b).to_u128(),
            Some(123_456_789_012_345u128 * 987_654_321_098u128)
        );
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = nat(42);
        assert!(a.mul_ref(&Natural::zero()).is_zero());
        assert_eq!(a.mul_ref(&Natural::one()), a);
    }

    #[test]
    fn mul_small_carries() {
        let a = nat(u128::MAX);
        let r = a.mul_small(u64::MAX);
        // (2^128 - 1) * (2^64 - 1) = 2^192 - 2^128 - 2^64 + 1
        let expected = Natural::from(2u64).pow(192);
        let expected = expected
            .checked_sub(&Natural::from(2u64).pow(128))
            .unwrap()
            .checked_sub(&Natural::from(2u64).pow(64))
            .unwrap()
            + Natural::one();
        assert_eq!(r, expected);
    }

    #[test]
    fn div_rem_small_roundtrip() {
        let a = Natural::from_str("340282366920938463463374607431768211455999").unwrap();
        let (q, r) = a.div_rem_small(997);
        let back = q.mul_small(997) + Natural::from(r);
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = nat(1).div_rem_small(0);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999999",
        ];
        for c in cases {
            let n = Natural::from_str(c).unwrap();
            assert_eq!(n.to_string(), c);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Natural::from_str("").is_err());
        assert!(Natural::from_str("12a").is_err());
        assert!(Natural::from_str("-5").is_err());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(nat(5) < nat(6));
        assert!(nat(1u128 << 64) > nat(u64::MAX as u128));
        assert_eq!(nat(77).cmp(&nat(77)), Ordering::Equal);
    }

    #[test]
    fn gcd_small_cases() {
        assert_eq!(nat(12).gcd(&nat(18)).to_u64(), Some(6));
        assert_eq!(nat(17).gcd(&nat(13)).to_u64(), Some(1));
        assert_eq!(nat(0).gcd(&nat(5)).to_u64(), Some(5));
        assert_eq!(nat(5).gcd(&nat(0)).to_u64(), Some(5));
        assert_eq!(nat(0).gcd(&nat(0)), Natural::zero());
        assert_eq!(nat(48).gcd(&nat(64)).to_u64(), Some(16));
    }

    #[test]
    fn shifts_are_inverse() {
        let mut a = Natural::from_str("123456789123456789123456789").unwrap();
        let orig = a.clone();
        a.shl1_assign();
        a.shr1_assign();
        assert_eq!(a, orig);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        assert_eq!(nat(3).pow(0), Natural::one());
        assert_eq!(nat(3).pow(5).to_u64(), Some(243));
        assert_eq!(nat(2).pow(130).bit_len(), 131);
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(nat(0).to_f64(), 0.0);
        assert_eq!(nat(1 << 40).to_f64(), (1u64 << 40) as f64);
        let big = Natural::from(2u64).pow(100);
        let rel = (big.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100);
        assert!(rel < 1e-12);
    }

    #[test]
    fn div_exact_small_ok_and_panic() {
        assert_eq!(nat(42).div_exact_small(7).to_u64(), Some(6));
        let res = std::panic::catch_unwind(|| nat(43).div_exact_small(7));
        assert!(res.is_err());
    }
}
