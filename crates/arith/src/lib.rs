//! # hq-arith — exact arithmetic for hierarchical-query algorithms
//!
//! Arbitrary-precision [`Natural`] numbers, exact signed [`Rational`]s,
//! and the combinatorial helpers (factorials, binomials, Shapley
//! permutation weights) required by the Shapley-value instantiation of
//! the unifying algorithm from *A Unifying Algorithm for Hierarchical
//! Queries* (PODS 2025).
//!
//! The `#Sat` counting vectors of Definition 5.14 hold subset counts up
//! to `C(n, n/2)`, and exact Shapley values are rationals with
//! `n!`-scale denominators — both far beyond machine integers for the
//! database sizes the complexity theorems cover. Everything in this
//! crate is implemented from scratch (no external bignum dependency) and
//! is deliberately simple: schoolbook multiplication and binary GCD are
//! ample for numbers of a few hundred digits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combinatorics;
pub mod natural;
pub mod rational;

pub use combinatorics::{binomial, binomial_row, factorial, shapley_weight};
pub use natural::Natural;
pub use rational::Rational;
