//! Property tests for the bignum substrate: `Natural` and `Rational`
//! against `u128`/fraction references, plus the ring axioms on large
//! values where no machine reference exists.

use hq_arith::{binomial, factorial, Natural, Rational};
use proptest::prelude::*;
use std::str::FromStr;

fn nat(v: u128) -> Natural {
    Natural::from(v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        prop_assert_eq!((&nat(a) + &nat(b)).to_u128(), Some(a + b));
    }

    #[test]
    fn sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(nat(hi).checked_sub(&nat(lo)).unwrap().to_u128(), Some(hi - lo));
        if hi != lo {
            prop_assert!(nat(lo).checked_sub(&nat(hi)).is_none());
        }
    }

    #[test]
    fn mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        prop_assert_eq!(
            nat(a as u128).mul_ref(&nat(b as u128)).to_u128(),
            Some(a as u128 * b as u128)
        );
    }

    #[test]
    fn div_rem_small_roundtrip(a in any::<u128>(), d in 1u64..u64::MAX) {
        let n = nat(a);
        let (q, r) = n.div_rem_small(d);
        prop_assert!(r < d);
        let back = q.mul_small(d) + Natural::from(r);
        prop_assert_eq!(back, n);
    }

    #[test]
    fn display_parse_roundtrip(a in any::<u128>(), b in any::<u128>()) {
        // Build a number wider than 128 bits via multiplication.
        let n = nat(a).mul_ref(&nat(b));
        let s = n.to_string();
        prop_assert_eq!(Natural::from_str(&s).unwrap(), n);
    }

    #[test]
    fn gcd_properties(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let g = nat(a).gcd(&nat(b));
        // g divides both (via div_rem on u128 when possible, else
        // structural checks).
        if let (Some(gv), true) = (g.to_u128(), a != 0 || b != 0) {
            prop_assert!(gv != 0);
            prop_assert_eq!(a % gv, 0);
            prop_assert_eq!(b % gv, 0);
        }
        // Commutativity.
        prop_assert_eq!(g, nat(b).gcd(&nat(a)));
    }

    #[test]
    fn ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(nat(a).cmp(&nat(b)), a.cmp(&b));
    }

    #[test]
    fn distributivity_on_wide_values(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        let (na, nb, nc) = (nat(a), nat(b), nat(c));
        let lhs = na.mul_ref(&(&nb + &nc));
        let rhs = na.mul_ref(&nb) + na.mul_ref(&nc);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rational_field_axioms(
        (p1, q1) in (0i64..1000, 1u64..1000),
        (p2, q2) in (0i64..1000, 1u64..1000),
        (p3, q3) in (1i64..1000, 1u64..1000),
    ) {
        let a = Rational::from_i64(p1) / Rational::from_u64(q1);
        let b = Rational::from_i64(p2) / Rational::from_u64(q2);
        let c = Rational::from_i64(p3) / Rational::from_u64(q3);
        // Commutativity / associativity / distributivity.
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Subtraction inverts addition; division inverts multiplication.
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        prop_assert_eq!(&(&a * &c) / &c, a.clone());
    }

    #[test]
    fn rational_to_f64_close(p in 0u64..1_000_000, q in 1u64..1_000_000) {
        let r = Rational::ratio(p, q);
        let expected = p as f64 / q as f64;
        prop_assert!((r.to_f64() - expected).abs() <= 1e-9 * (1.0 + expected));
    }

    #[test]
    fn binomial_recurrence(n in 1u64..40, k in 0u64..40) {
        let k = k.min(n);
        if k == 0 || k == n {
            prop_assert_eq!(binomial(n, k).to_u64(), Some(1));
        } else {
            prop_assert_eq!(
                binomial(n, k),
                binomial(n - 1, k - 1) + binomial(n - 1, k)
            );
        }
    }

    #[test]
    fn factorial_ratio_is_falling_product(n in 1u64..25) {
        // n! / (n-1)! == n, computed through exact rationals.
        let r = Rational::from_naturals(factorial(n), factorial(n - 1));
        prop_assert_eq!(r, Rational::from_u64(n));
    }
}
