//! Property tests for the backtracking join engine against a naive
//! nested-loop reference: every brute-force oracle in the workspace
//! rests on this engine, so it gets its own independent check.

use hq_db::generate::{fill_relation, rng, ColumnDist};
use hq_db::{
    all_matches, count_matches, satisfiable, Database, Interner, Pattern, PatternAtom, Value,
};
use proptest::prelude::*;
use rand::Rng;
use std::collections::BTreeSet;

/// Naive reference: enumerate one tuple per atom (cartesian product),
/// check variable consistency, and collect distinct full assignments.
fn reference_matches(db: &Database, pattern: &Pattern) -> BTreeSet<Vec<Value>> {
    let mut out = BTreeSet::new();
    let relations: Vec<Vec<&hq_db::Tuple>> = pattern
        .atoms
        .iter()
        .map(|a| db.relation(a.rel).map(|r| r.sorted()).unwrap_or_default())
        .collect();
    let mut picks = vec![0usize; pattern.atoms.len()];
    'outer: loop {
        // Evaluate the current combination.
        let mut binding: Vec<Option<Value>> = vec![None; pattern.var_count];
        let mut ok = true;
        for (ai, atom) in pattern.atoms.iter().enumerate() {
            let Some(tuple) = relations[ai].get(picks[ai]) else {
                ok = false;
                break;
            };
            for (pos, &v) in atom.vars.iter().enumerate() {
                match binding[v] {
                    None => binding[v] = Some(tuple.get(pos)),
                    Some(existing) => {
                        if existing != tuple.get(pos) {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                break;
            }
        }
        if ok && binding.iter().all(Option::is_some) {
            out.insert(binding.into_iter().map(|v| v.unwrap()).collect());
        }
        // Odometer increment.
        for ai in 0..picks.len() {
            picks[ai] += 1;
            if picks[ai] < relations[ai].len() {
                continue 'outer;
            }
            picks[ai] = 0;
            if ai == picks.len() - 1 {
                break 'outer;
            }
        }
        if picks.iter().all(|&p| p == 0) {
            // All relations empty or single wrap-around completed.
            break;
        }
    }
    out
}

/// Builds a random pattern + database from a seed.
fn random_case(seed: u64) -> (Database, Pattern) {
    let mut r = rng(seed);
    let mut interner = Interner::new();
    let var_count = r.gen_range(1..=4usize);
    let n_atoms = r.gen_range(1..=3usize);
    let mut atoms = Vec::new();
    let mut db = Database::new();
    let mut used = vec![false; var_count];
    for a in 0..n_atoms {
        let arity = r.gen_range(1..=3usize);
        let vars: Vec<usize> = (0..arity).map(|_| r.gen_range(0..var_count)).collect();
        for &v in &vars {
            used[v] = true;
        }
        let rel = interner.intern(&format!("R{a}"));
        fill_relation(
            &mut db,
            rel,
            &vec![ColumnDist::Uniform { domain: 3 }; arity],
            r.gen_range(0..=5),
            &mut r,
        );
        atoms.push(PatternAtom { rel, vars });
    }
    // Ensure every variable occurs somewhere: add a unary atom per
    // unused variable.
    for (v, u) in used.iter().enumerate() {
        if !u {
            let rel = interner.intern(&format!("U{v}"));
            fill_relation(
                &mut db,
                rel,
                &[ColumnDist::Uniform { domain: 3 }],
                r.gen_range(0..=3),
                &mut r,
            );
            atoms.push(PatternAtom { rel, vars: vec![v] });
        }
    }
    (db, Pattern { atoms, var_count })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_nested_loop_reference(seed in 0u64..1_000_000) {
        let (db, pattern) = random_case(seed);
        let reference = reference_matches(&db, &pattern);
        let engine: BTreeSet<Vec<Value>> = all_matches(&db, &pattern)
            .unwrap()
            .into_iter()
            .collect();
        prop_assert_eq!(&engine, &reference, "pattern {:?}", pattern);
        prop_assert_eq!(count_matches(&db, &pattern).unwrap(), reference.len() as u64);
        prop_assert_eq!(satisfiable(&db, &pattern).unwrap(), !reference.is_empty());
    }

    #[test]
    fn engine_output_has_no_duplicates(seed in 0u64..1_000_000) {
        let (db, pattern) = random_case(seed);
        let list = all_matches(&db, &pattern).unwrap();
        let set: BTreeSet<&Vec<Value>> = list.iter().collect();
        prop_assert_eq!(set.len(), list.len(), "duplicate assignments emitted");
    }

    #[test]
    fn inserting_facts_is_monotone(seed in 0u64..1_000_000) {
        // Adding tuples can only grow the match set.
        let (mut db, pattern) = random_case(seed);
        let before = count_matches(&db, &pattern).unwrap();
        let mut r = rng(seed ^ 0xABCD);
        // Insert one random tuple into a random pattern relation.
        let atom = &pattern.atoms[r.gen_range(0..pattern.atoms.len())];
        let arity = atom.vars.len();
        let tuple: hq_db::Tuple = (0..arity)
            .map(|_| Value::Int(r.gen_range(0..3)))
            .collect();
        db.insert_tuple(atom.rel, tuple);
        let after = count_matches(&db, &pattern).unwrap();
        prop_assert!(after >= before);
    }
}
