//! Order-preserving dictionary encoding of domain values.
//!
//! The columnar annotated-relation backend stores rows as dense
//! [`RowCode`] matrices instead of boxed [`Tuple`]s. A [`ValueDict`]
//! assigns every distinct [`Value`] of a problem instance a dense
//! `u32` code **in value order**, so that
//!
//! * comparing code sequences lexicographically is exactly comparing
//!   the decoded tuples lexicographically (the ordered-map backend's
//!   `BTreeMap<Tuple, K>` iteration order), and
//! * codes are 4 bytes instead of 16, quadrupling the row density of
//!   sort/merge loops.
//!
//! The dictionary is built **once per instance**: Algorithm 1 only
//! projects and merges, so no new domain value ever appears after the
//! initial annotation — the closed-dictionary assumption is an
//! invariant of the *batch* engine. The incremental maintainer can
//! insert genuinely new facts, so [`ValueDict::extend_with`] produces
//! an extended dictionary plus the old→new code translation; codes
//! stay dense and value-ordered, at the price of renumbering (the
//! caller remaps its matrices — an `O(rows)` cost paid only on
//! novel-value inserts).

use crate::tuple::Tuple;
use crate::value::Value;

/// A code assigned by a [`ValueDict`]: dense, order-preserving.
pub type RowCode = u32;

/// An immutable value ↔ code table over the distinct values of one
/// problem instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueDict {
    /// Distinct values in ascending order; the code of `sorted[i]` is
    /// `i`.
    sorted: Vec<Value>,
}

impl ValueDict {
    /// Builds the dictionary over the distinct values of `values`.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` distinct values are supplied.
    pub fn build(values: impl IntoIterator<Item = Value>) -> Self {
        let mut sorted: Vec<Value> = values.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(
            u32::try_from(sorted.len()).is_ok(),
            "value dictionary overflow"
        );
        ValueDict { sorted }
    }

    /// Wraps an already-sorted, duplicate-free value list (the
    /// scatter-encoding build path produces one as a side effect).
    ///
    /// # Panics
    /// Panics (in debug builds) if `sorted` is not strictly ascending,
    /// or (always) on more than `u32::MAX` values.
    pub fn from_sorted(sorted: Vec<Value>) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] < w[1]),
            "values must be sorted"
        );
        assert!(
            u32::try_from(sorted.len()).is_ok(),
            "value dictionary overflow"
        );
        ValueDict { sorted }
    }

    /// The code of `v`, if `v` was present at build time.
    #[inline]
    pub fn code(&self, v: Value) -> Option<RowCode> {
        self.sorted.binary_search(&v).ok().map(|i| i as RowCode)
    }

    /// Decodes a code back to its value.
    ///
    /// # Panics
    /// Panics if `code` was not produced by this dictionary.
    #[inline]
    pub fn value(&self, code: RowCode) -> Value {
        self.sorted[code as usize]
    }

    /// Encodes a tuple into `out` (appending `tuple.arity()` codes).
    /// Returns `false` (leaving `out` truncated back to its original
    /// length) if any value is outside the dictionary.
    pub fn encode_into(&self, tuple: &Tuple, out: &mut Vec<RowCode>) -> bool {
        let start = out.len();
        for &v in tuple.values() {
            match self.code(v) {
                Some(c) => out.push(c),
                None => {
                    out.truncate(start);
                    return false;
                }
            }
        }
        true
    }

    /// Decodes a code row back into a [`Tuple`].
    pub fn decode(&self, codes: &[RowCode]) -> Tuple {
        codes.iter().map(|&c| self.value(c)).collect()
    }

    /// Builds a dictionary extended with `values` (novel ones spliced
    /// in value order), plus the old→new code translation table
    /// (`translation[old_code] == new_code`). Codes remain dense and
    /// order-preserving, so code-wise comparison still equals
    /// value-wise comparison after the extension.
    ///
    /// When every value is already present the result is an unchanged
    /// clone and the translation is the identity.
    ///
    /// # Panics
    /// Panics if the extended dictionary would exceed `u32::MAX` values.
    pub fn extend_with(
        &self,
        values: impl IntoIterator<Item = Value>,
    ) -> (ValueDict, Vec<RowCode>) {
        let mut novel: Vec<Value> = values
            .into_iter()
            .filter(|v| self.code(*v).is_none())
            .collect();
        novel.sort_unstable();
        novel.dedup();
        if novel.is_empty() {
            return (self.clone(), (0..self.sorted.len() as RowCode).collect());
        }
        let mut merged = Vec::with_capacity(self.sorted.len() + novel.len());
        let mut translation = Vec::with_capacity(self.sorted.len());
        let mut ni = 0;
        for &v in &self.sorted {
            while ni < novel.len() && novel[ni] < v {
                merged.push(novel[ni]);
                ni += 1;
            }
            assert!(
                u32::try_from(merged.len()).is_ok(),
                "value dictionary overflow"
            );
            translation.push(merged.len() as RowCode);
            merged.push(v);
        }
        merged.extend_from_slice(&novel[ni..]);
        (ValueDict::from_sorted(merged), translation)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Interner;

    #[test]
    fn codes_preserve_value_order() {
        let mut i = Interner::new();
        let vals = vec![
            Value::int(30),
            Value::int(-5),
            i.value("b"),
            i.value("a"),
            Value::int(30), // duplicate
        ];
        let d = ValueDict::build(vals.clone());
        assert_eq!(d.len(), 4);
        for a in &vals {
            for b in &vals {
                let (ca, cb) = (d.code(*a).unwrap(), d.code(*b).unwrap());
                assert_eq!(ca.cmp(&cb), a.cmp(b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = ValueDict::build([1, 5, 9].map(Value::int));
        let t = Tuple::ints(&[9, 1, 5]);
        let mut codes = Vec::new();
        assert!(d.encode_into(&t, &mut codes));
        assert_eq!(d.decode(&codes), t);
    }

    #[test]
    fn unknown_value_rejected_and_buffer_restored() {
        let d = ValueDict::build([1, 2].map(Value::int));
        let mut codes = vec![7u32];
        assert!(!d.encode_into(&Tuple::ints(&[1, 3]), &mut codes));
        assert_eq!(codes, vec![7u32], "partial encode must be rolled back");
        assert_eq!(d.code(Value::int(3)), None);
    }

    #[test]
    fn extend_with_preserves_order_and_translates() {
        let d = ValueDict::build([10, 30, 50].map(Value::int));
        let (e, tr) = d.extend_with([20, 50, 60].map(Value::int));
        assert_eq!(e.len(), 5); // 10, 20, 30, 50, 60
                                // Old codes 0,1,2 (10,30,50) now sit at 0,2,3.
        assert_eq!(tr, vec![0, 2, 3]);
        for old in 0..d.len() as RowCode {
            assert_eq!(e.value(tr[old as usize]), d.value(old));
        }
        // Order preservation across the whole extended table.
        for a in 0..e.len() as RowCode {
            for b in 0..e.len() as RowCode {
                assert_eq!(a.cmp(&b), e.value(a).cmp(&e.value(b)));
            }
        }
        // No novel values: identity translation, unchanged table.
        let (same, id) = d.extend_with([10].map(Value::int));
        assert_eq!(same, d);
        assert_eq!(id, vec![0, 1, 2]);
    }

    #[test]
    fn empty_dictionary() {
        let d = ValueDict::build([]);
        assert!(d.is_empty());
        let mut codes = Vec::new();
        assert!(d.encode_into(&Tuple::empty(), &mut codes));
        assert!(codes.is_empty());
    }
}
