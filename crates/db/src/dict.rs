//! Order-preserving dictionary encoding of domain values.
//!
//! The columnar annotated-relation backend stores rows as dense
//! [`RowCode`] matrices instead of boxed [`Tuple`]s. A [`ValueDict`]
//! assigns every distinct [`Value`] of a problem instance a dense
//! `u32` code **in value order**, so that
//!
//! * comparing code sequences lexicographically is exactly comparing
//!   the decoded tuples lexicographically (the ordered-map backend's
//!   `BTreeMap<Tuple, K>` iteration order), and
//! * codes are 4 bytes instead of 16, quadrupling the row density of
//!   sort/merge loops.
//!
//! The dictionary is built **once per instance**: Algorithm 1 only
//! projects and merges, so no new domain value ever appears after the
//! initial annotation — the closed-dictionary assumption is an
//! invariant of the engine, not a wish.

use crate::tuple::Tuple;
use crate::value::Value;

/// A code assigned by a [`ValueDict`]: dense, order-preserving.
pub type RowCode = u32;

/// An immutable value ↔ code table over the distinct values of one
/// problem instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueDict {
    /// Distinct values in ascending order; the code of `sorted[i]` is
    /// `i`.
    sorted: Vec<Value>,
}

impl ValueDict {
    /// Builds the dictionary over the distinct values of `values`.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` distinct values are supplied.
    pub fn build(values: impl IntoIterator<Item = Value>) -> Self {
        let mut sorted: Vec<Value> = values.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(
            u32::try_from(sorted.len()).is_ok(),
            "value dictionary overflow"
        );
        ValueDict { sorted }
    }

    /// Wraps an already-sorted, duplicate-free value list (the
    /// scatter-encoding build path produces one as a side effect).
    ///
    /// # Panics
    /// Panics (in debug builds) if `sorted` is not strictly ascending,
    /// or (always) on more than `u32::MAX` values.
    pub fn from_sorted(sorted: Vec<Value>) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] < w[1]),
            "values must be sorted"
        );
        assert!(
            u32::try_from(sorted.len()).is_ok(),
            "value dictionary overflow"
        );
        ValueDict { sorted }
    }

    /// The code of `v`, if `v` was present at build time.
    #[inline]
    pub fn code(&self, v: Value) -> Option<RowCode> {
        self.sorted.binary_search(&v).ok().map(|i| i as RowCode)
    }

    /// Decodes a code back to its value.
    ///
    /// # Panics
    /// Panics if `code` was not produced by this dictionary.
    #[inline]
    pub fn value(&self, code: RowCode) -> Value {
        self.sorted[code as usize]
    }

    /// Encodes a tuple into `out` (appending `tuple.arity()` codes).
    /// Returns `false` (leaving `out` truncated back to its original
    /// length) if any value is outside the dictionary.
    pub fn encode_into(&self, tuple: &Tuple, out: &mut Vec<RowCode>) -> bool {
        let start = out.len();
        for &v in tuple.values() {
            match self.code(v) {
                Some(c) => out.push(c),
                None => {
                    out.truncate(start);
                    return false;
                }
            }
        }
        true
    }

    /// Decodes a code row back into a [`Tuple`].
    pub fn decode(&self, codes: &[RowCode]) -> Tuple {
        codes.iter().map(|&c| self.value(c)).collect()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Interner;

    #[test]
    fn codes_preserve_value_order() {
        let mut i = Interner::new();
        let vals = vec![
            Value::int(30),
            Value::int(-5),
            i.value("b"),
            i.value("a"),
            Value::int(30), // duplicate
        ];
        let d = ValueDict::build(vals.clone());
        assert_eq!(d.len(), 4);
        for a in &vals {
            for b in &vals {
                let (ca, cb) = (d.code(*a).unwrap(), d.code(*b).unwrap());
                assert_eq!(ca.cmp(&cb), a.cmp(b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = ValueDict::build([1, 5, 9].map(Value::int));
        let t = Tuple::ints(&[9, 1, 5]);
        let mut codes = Vec::new();
        assert!(d.encode_into(&t, &mut codes));
        assert_eq!(d.decode(&codes), t);
    }

    #[test]
    fn unknown_value_rejected_and_buffer_restored() {
        let d = ValueDict::build([1, 2].map(Value::int));
        let mut codes = vec![7u32];
        assert!(!d.encode_into(&Tuple::ints(&[1, 3]), &mut codes));
        assert_eq!(codes, vec![7u32], "partial encode must be rolled back");
        assert_eq!(d.code(Value::int(3)), None);
    }

    #[test]
    fn empty_dictionary() {
        let d = ValueDict::build([]);
        assert!(d.is_empty());
        let mut codes = Vec::new();
        assert!(d.encode_into(&Tuple::empty(), &mut codes));
        assert!(codes.is_empty());
    }
}
