//! A small text format for database instances.
//!
//! One fact per line, optionally annotated with a weight after `@`
//! (interpreted per problem: a probability for PQE, ignored elsewhere):
//!
//! ```text
//! # comments and blank lines are skipped
//! R(1, 5)
//! S(1, alice) @ 0.9
//! T(1, 2, 4)
//! ```
//!
//! Values parse as `i64` when possible and are interned as strings
//! otherwise. The CLI and the examples load instances through this
//! module.

use crate::database::{Database, Fact};
use crate::tuple::Tuple;
use crate::value::{Interner, Value};
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The result of parsing a database text: the instance plus any
/// per-fact weights that appeared after `@`.
#[derive(Debug, Clone, Default)]
pub struct ParsedDatabase {
    /// The parsed set database.
    pub database: Database,
    /// Facts that carried an `@ weight` annotation, in file order.
    pub weights: Vec<(Fact, f64)>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses one value: integer if possible, otherwise interned string.
fn parse_value(token: &str, interner: &mut Interner) -> Value {
    match token.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => interner.value(token),
    }
}

/// Parses a single fact line `R(v1, …) [@ weight]`.
///
/// # Errors
/// Returns a [`ParseError`] describing the malformed syntax.
pub fn parse_fact_line(
    line: &str,
    lineno: usize,
    interner: &mut Interner,
) -> Result<(Fact, Option<f64>), ParseError> {
    let (fact_part, weight_part) = match line.split_once('@') {
        Some((f, w)) => (f.trim(), Some(w.trim())),
        None => (line.trim(), None),
    };
    let open = fact_part
        .find('(')
        .ok_or_else(|| err(lineno, "expected '(' in fact"))?;
    if !fact_part.ends_with(')') {
        return Err(err(lineno, "expected fact to end with ')'"));
    }
    let name = fact_part[..open].trim();
    if name.is_empty() {
        return Err(err(lineno, "empty relation name"));
    }
    let args = &fact_part[open + 1..fact_part.len() - 1];
    let values: Vec<Value> = if args.trim().is_empty() {
        Vec::new()
    } else {
        args.split(',')
            .map(|tok| parse_value(tok.trim(), interner))
            .collect()
    };
    let rel = interner.intern(name);
    let weight = match weight_part {
        None => None,
        Some(w) => Some(
            w.parse::<f64>()
                .map_err(|_| err(lineno, format!("invalid weight '{w}'")))?,
        ),
    };
    Ok((Fact::new(rel, Tuple::from(values)), weight))
}

/// Parses a whole database text (facts, comments, blank lines).
///
/// # Errors
/// Returns the first [`ParseError`] encountered.
pub fn parse_database(text: &str, interner: &mut Interner) -> Result<ParsedDatabase, ParseError> {
    let mut out = ParsedDatabase::default();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let (fact, weight) = parse_fact_line(line, lineno, interner)?;
        if let Some(w) = weight {
            out.weights.push((fact.clone(), w));
        }
        out.database.insert(fact);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_facts() {
        let mut i = Interner::new();
        let parsed = parse_database("R(1, 5)\nS(1, 2)\nS(1, 1)\n", &mut i).unwrap();
        assert_eq!(parsed.database.fact_count(), 3);
        assert!(parsed.weights.is_empty());
        let r = i.get("R").unwrap();
        assert!(parsed
            .database
            .contains(&Fact::new(r, Tuple::ints(&[1, 5]))));
    }

    #[test]
    fn parses_weights_and_strings() {
        let mut i = Interner::new();
        let parsed = parse_database("Obs(sensor_a, 42) @ 0.75\n", &mut i).unwrap();
        assert_eq!(parsed.weights.len(), 1);
        assert_eq!(parsed.weights[0].1, 0.75);
        let rel = i.get("Obs").unwrap();
        let sensor = i.get("sensor_a").unwrap();
        assert!(parsed.database.contains(&Fact::new(
            rel,
            Tuple::from(vec![Value::Str(sensor), Value::Int(42)])
        )));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let mut i = Interner::new();
        let text = "# header\n\nR(1) # trailing comment\n   \n";
        let parsed = parse_database(text, &mut i).unwrap();
        assert_eq!(parsed.database.fact_count(), 1);
    }

    #[test]
    fn nullary_facts_parse() {
        let mut i = Interner::new();
        let parsed = parse_database("Unit()\n", &mut i).unwrap();
        assert_eq!(parsed.database.fact_count(), 1);
        let rel = i.get("Unit").unwrap();
        assert!(parsed.database.contains(&Fact::new(rel, Tuple::empty())));
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let mut i = Interner::new();
        let e = parse_database("R(1)\nbroken line\n", &mut i).unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_database("R(1) @ nan-ish-but-not\n", &mut i);
        // "nan-ish-but-not" is not a float
        assert!(e.is_err());
        let e = parse_database("(1, 2)\n", &mut i).unwrap_err();
        assert!(e.message.contains("empty relation name"));
        let e = parse_database("R(1, 2\n", &mut i).unwrap_err();
        assert!(e.message.contains("')'"));
    }

    #[test]
    fn roundtrip_display_parse() {
        let mut i = Interner::new();
        let parsed = parse_database("R(1, 5)\nS(1, 1)\nS(1, 2)\nT(1, 2, 4)\n", &mut i).unwrap();
        let text = parsed.database.display(&i).to_string();
        let mut i2 = Interner::new();
        let reparsed = parse_database(&text, &mut i2).unwrap();
        assert_eq!(reparsed.database.fact_count(), parsed.database.fact_count());
    }
}
