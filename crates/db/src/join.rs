//! A backtracking conjunctive-pattern join engine.
//!
//! Computes the bag-set value `Q(D)` — the number of *distinct*
//! satisfying assignments of a conjunctive pattern over a set database
//! (Section 1 of the paper) — and enumerates those assignments. This is
//! the ground truth every brute-force baseline is built on: possible
//! worlds (PQE), repair subsets (Bag-Set Maximization), and endogenous
//! subsets (`#Sat`) all re-evaluate patterns through this engine.
//!
//! The engine is deliberately query-generic: atoms are relation symbols
//! with slots holding variable ids (repeats allowed). Atom order is
//! chosen greedily (bound-connected first, then smallest relation), and
//! each atom gets a hash index on the positions bound at its turn, built
//! once before the search.

use crate::database::Database;
use crate::tuple::Tuple;
use crate::value::{Sym, Value};
use std::collections::HashMap;

/// One atom of a conjunctive pattern: `rel(vars[0], vars[1], …)`.
/// Variable ids may repeat within an atom (the engine filters for
/// consistency), although self-join-free queries never produce repeats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternAtom {
    /// Relation symbol.
    pub rel: Sym,
    /// Variable id per argument position.
    pub vars: Vec<usize>,
}

/// A conjunctive pattern: `∃ x₀ … x_{n-1}. atom₁ ∧ … ∧ atom_m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The atoms, in arbitrary order.
    pub atoms: Vec<PatternAtom>,
    /// Number of distinct variables; every id in `atoms` must be `< var_count`,
    /// and every variable must occur in at least one atom.
    pub var_count: usize,
}

/// Errors detectable from the pattern/database shape alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A variable id is `>= var_count`.
    VarOutOfRange {
        /// The offending variable id.
        var: usize,
    },
    /// A variable occurs in no atom (the match set would be infinite).
    UnusedVariable {
        /// The unused variable id.
        var: usize,
    },
    /// An atom's slot count disagrees with the relation arity in the database.
    ArityMismatch {
        /// The relation symbol.
        rel: Sym,
        /// Slots in the pattern atom.
        pattern_arity: usize,
        /// Arity of the relation instance.
        relation_arity: usize,
    },
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::VarOutOfRange { var } => {
                write!(f, "variable id {var} out of range")
            }
            PatternError::UnusedVariable { var } => {
                write!(f, "variable id {var} occurs in no atom")
            }
            PatternError::ArityMismatch { rel, pattern_arity, relation_arity } => write!(
                f,
                "atom over relation #{} has {pattern_arity} slots but the relation has arity {relation_arity}",
                rel.0
            ),
        }
    }
}

impl std::error::Error for PatternError {}

impl Pattern {
    /// Validates the pattern against a database (arity checks are
    /// skipped for relations absent from the database — they simply
    /// yield zero matches).
    pub fn validate(&self, db: &Database) -> Result<(), PatternError> {
        let mut used = vec![false; self.var_count];
        for atom in &self.atoms {
            for &v in &atom.vars {
                if v >= self.var_count {
                    return Err(PatternError::VarOutOfRange { var: v });
                }
                used[v] = true;
            }
            if let Some(r) = db.relation(atom.rel) {
                if r.arity() != atom.vars.len() {
                    return Err(PatternError::ArityMismatch {
                        rel: atom.rel,
                        pattern_arity: atom.vars.len(),
                        relation_arity: r.arity(),
                    });
                }
            }
        }
        if let Some(var) = used.iter().position(|&u| !u) {
            return Err(PatternError::UnusedVariable { var });
        }
        Ok(())
    }
}

/// Greedy atom order: repeatedly pick the atom with the most
/// already-bound variables, breaking ties by smaller relation
/// cardinality. Keeps the search bound-connected whenever the pattern is
/// connected.
fn atom_order(db: &Database, pattern: &Pattern) -> Vec<usize> {
    let n = pattern.atoms.len();
    let size = |i: usize| db.relation(pattern.atoms[i].rel).map_or(0, |r| r.len());
    let mut bound = vec![false; pattern.var_count];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|&(_, &i)| {
                let bound_vars = pattern.atoms[i].vars.iter().filter(|&&v| bound[v]).count();
                // More bound vars first; then smaller relations.
                (bound_vars, std::cmp::Reverse(size(i)))
            })
            .expect("remaining is non-empty");
        order.push(best);
        remaining.swap_remove(pos);
        for &v in &pattern.atoms[best].vars {
            bound[v] = true;
        }
    }
    order
}

/// A per-atom hash index keyed on the positions bound at this atom's
/// turn in the join order.
struct AtomIndex<'a> {
    vars: &'a [usize],
    /// Positions (into the atom) whose variables are bound before this atom.
    bound_positions: Vec<usize>,
    /// Map from key tuple (values at `bound_positions`) to matching rows.
    index: HashMap<Tuple, Vec<&'a Tuple>>,
}

impl<'a> AtomIndex<'a> {
    fn build(db: &'a Database, atom: &'a PatternAtom, already_bound: &[bool]) -> Self {
        let bound_positions: Vec<usize> = atom
            .vars
            .iter()
            .enumerate()
            .filter(|&(_, &v)| already_bound[v])
            .map(|(p, _)| p)
            .collect();
        let mut index: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
        if let Some(rel) = db.relation(atom.rel) {
            for t in rel {
                // Skip rows inconsistent with repeated variables.
                if !row_self_consistent(atom, t) {
                    continue;
                }
                index
                    .entry(t.project(&bound_positions))
                    .or_default()
                    .push(t);
            }
        }
        AtomIndex {
            vars: &atom.vars,
            bound_positions,
            index,
        }
    }

    fn candidates(&self, binding: &[Option<Value>]) -> &[&'a Tuple] {
        let key: Tuple = self
            .bound_positions
            .iter()
            .map(|&p| binding[self.vars[p]].expect("position marked bound"))
            .collect();
        self.index.get(&key).map_or(&[], Vec::as_slice)
    }
}

/// Checks repeated-variable consistency inside a single atom.
fn row_self_consistent(atom: &PatternAtom, t: &Tuple) -> bool {
    for (i, &v) in atom.vars.iter().enumerate() {
        for (j, &w) in atom.vars.iter().enumerate().take(i) {
            if v == w && t.get(i) != t.get(j) {
                return false;
            }
        }
    }
    true
}

/// Visitor outcome: continue enumerating or stop early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep enumerating.
    Continue,
    /// Stop the search (e.g. Boolean evaluation found a witness).
    Stop,
}

/// Enumerates every distinct satisfying assignment of `pattern` over
/// `db`, invoking `visit` with the full variable binding. Returns the
/// number of assignments visited (all of them unless `visit` stopped
/// early).
///
/// # Errors
/// Returns [`PatternError`] if the pattern is malformed for this database.
pub fn enumerate(
    db: &Database,
    pattern: &Pattern,
    mut visit: impl FnMut(&[Value]) -> Flow,
) -> Result<u64, PatternError> {
    pattern.validate(db)?;
    if pattern.atoms.is_empty() {
        // An empty conjunction with no variables has exactly the empty
        // assignment (var_count == 0 is guaranteed by validate).
        visit(&[]);
        return Ok(1);
    }
    let order = atom_order(db, pattern);
    // Build per-step indexes keyed on the bound positions at that step.
    let mut bound = vec![false; pattern.var_count];
    let mut indexes = Vec::with_capacity(order.len());
    for &i in &order {
        let atom = &pattern.atoms[i];
        indexes.push(AtomIndex::build(db, atom, &bound));
        for &v in &atom.vars {
            bound[v] = true;
        }
    }
    let mut binding: Vec<Option<Value>> = vec![None; pattern.var_count];
    let mut count = 0u64;
    let mut stopped = false;
    search(
        &indexes,
        0,
        &mut binding,
        &mut count,
        &mut stopped,
        &mut visit,
    );
    Ok(count)
}

fn search(
    indexes: &[AtomIndex<'_>],
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    count: &mut u64,
    stopped: &mut bool,
    visit: &mut impl FnMut(&[Value]) -> Flow,
) {
    if *stopped {
        return;
    }
    if depth == indexes.len() {
        *count += 1;
        let full: Vec<Value> = binding
            .iter()
            .map(|v| v.expect("all variables bound at a leaf"))
            .collect();
        if visit(&full) == Flow::Stop {
            *stopped = true;
        }
        return;
    }
    let idx = &indexes[depth];
    'rows: for row in idx.candidates(binding) {
        // Bind the free positions of this atom, checking consistency
        // against variables bound earlier in the same atom.
        let mut newly_bound = Vec::new();
        for (p, &v) in idx.vars.iter().enumerate() {
            match binding[v] {
                Some(existing) => {
                    if existing != row.get(p) {
                        for &nb in &newly_bound {
                            binding[nb] = None;
                        }
                        continue 'rows;
                    }
                }
                None => {
                    binding[v] = Some(row.get(p));
                    newly_bound.push(v);
                }
            }
        }
        search(indexes, depth + 1, binding, count, stopped, visit);
        for &nb in &newly_bound {
            binding[nb] = None;
        }
        if *stopped {
            return;
        }
    }
}

/// The bag-set value `Q(D)`: the number of distinct satisfying
/// assignments of `pattern` over `db`.
///
/// # Errors
/// Returns [`PatternError`] if the pattern is malformed for this database.
pub fn count_matches(db: &Database, pattern: &Pattern) -> Result<u64, PatternError> {
    enumerate(db, pattern, |_| Flow::Continue)
}

/// Boolean evaluation: does at least one satisfying assignment exist?
///
/// # Errors
/// Returns [`PatternError`] if the pattern is malformed for this database.
pub fn satisfiable(db: &Database, pattern: &Pattern) -> Result<bool, PatternError> {
    Ok(enumerate(db, pattern, |_| Flow::Stop)? > 0)
}

/// Collects all satisfying assignments (test convenience).
///
/// # Errors
/// Returns [`PatternError`] if the pattern is malformed for this database.
pub fn all_matches(db: &Database, pattern: &Pattern) -> Result<Vec<Vec<Value>>, PatternError> {
    let mut out = Vec::new();
    enumerate(db, pattern, |b| {
        out.push(b.to_vec());
        Flow::Continue
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::db_from_ints;

    fn atom(rel: Sym, vars: &[usize]) -> PatternAtom {
        PatternAtom {
            rel,
            vars: vars.to_vec(),
        }
    }

    /// The Fig. 1 / Eq. (1) query: Q() :- R(A,B), S(A,C), T(A,C,D).
    #[test]
    fn fig1_initial_database_has_one_match() {
        let (db, mut i) = db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ]);
        let (r, s, t) = (i.intern("R"), i.intern("S"), i.intern("T"));
        // vars: A=0 B=1 C=2 D=3
        let p = Pattern {
            atoms: vec![atom(r, &[0, 1]), atom(s, &[0, 2]), atom(t, &[0, 2, 3])],
            var_count: 4,
        };
        assert_eq!(count_matches(&db, &p).unwrap(), 1);
        let ms = all_matches(&db, &p).unwrap();
        assert_eq!(
            ms,
            vec![vec![
                Value::Int(1),
                Value::Int(5),
                Value::Int(2),
                Value::Int(4)
            ]]
        );
    }

    #[test]
    fn cartesian_product_counts_multiply() {
        let (db, mut i) = db_from_ints(&[("R", &[&[1], &[2], &[3]]), ("S", &[&[7], &[8]])]);
        let (r, s) = (i.intern("R"), i.intern("S"));
        let p = Pattern {
            atoms: vec![atom(r, &[0]), atom(s, &[1])],
            var_count: 2,
        };
        assert_eq!(count_matches(&db, &p).unwrap(), 6);
    }

    #[test]
    fn chain_join_counts() {
        // R(A,B), S(B,C): path counting.
        let (db, mut i) = db_from_ints(&[
            ("R", &[&[1, 2], &[1, 3], &[4, 2]]),
            ("S", &[&[2, 9], &[2, 8], &[3, 9]]),
        ]);
        let (r, s) = (i.intern("R"), i.intern("S"));
        let p = Pattern {
            atoms: vec![atom(r, &[0, 1]), atom(s, &[1, 2])],
            var_count: 3,
        };
        // (1,2)->{9,8}, (1,3)->{9}, (4,2)->{9,8} = 5 paths
        assert_eq!(count_matches(&db, &p).unwrap(), 5);
    }

    #[test]
    fn missing_relation_means_zero() {
        let (db, mut i) = db_from_ints(&[("R", &[&[1]])]);
        let (r, s) = (i.intern("R"), i.intern("S_missing"));
        let p = Pattern {
            atoms: vec![atom(r, &[0]), atom(s, &[0])],
            var_count: 1,
        };
        assert_eq!(count_matches(&db, &p).unwrap(), 0);
        assert!(!satisfiable(&db, &p).unwrap());
    }

    #[test]
    fn repeated_variable_in_atom_filters() {
        let (db, mut i) = db_from_ints(&[("E", &[&[1, 1], &[1, 2], &[3, 3]])]);
        let e = i.intern("E");
        let p = Pattern {
            atoms: vec![atom(e, &[0, 0])],
            var_count: 1,
        };
        // Only self-loops match E(X, X).
        assert_eq!(count_matches(&db, &p).unwrap(), 2);
    }

    #[test]
    fn shared_variable_across_atoms_filters() {
        let (db, mut i) = db_from_ints(&[("R", &[&[1], &[2]]), ("S", &[&[2], &[3]])]);
        let (r, s) = (i.intern("R"), i.intern("S"));
        let p = Pattern {
            atoms: vec![atom(r, &[0]), atom(s, &[0])],
            var_count: 1,
        };
        assert_eq!(all_matches(&db, &p).unwrap(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn satisfiable_stops_early() {
        let (db, mut i) = db_from_ints(&[("R", &[&[1], &[2], &[3], &[4], &[5], &[6], &[7]])]);
        let r = i.intern("R");
        let p = Pattern {
            atoms: vec![atom(r, &[0])],
            var_count: 1,
        };
        let mut seen = 0;
        enumerate(&db, &p, |_| {
            seen += 1;
            Flow::Stop
        })
        .unwrap();
        assert_eq!(seen, 1);
    }

    #[test]
    fn nullary_atom_checks_presence() {
        let mut i = crate::value::Interner::new();
        let r = i.intern("R0");
        let mut db = Database::new();
        db.declare(r, 0);
        let p = Pattern {
            atoms: vec![atom(r, &[])],
            var_count: 0,
        };
        assert_eq!(count_matches(&db, &p).unwrap(), 0);
        db.insert_tuple(r, Tuple::empty());
        assert_eq!(count_matches(&db, &p).unwrap(), 1);
    }

    #[test]
    fn validate_rejects_bad_patterns() {
        let (db, mut i) = db_from_ints(&[("R", &[&[1, 2]])]);
        let r = i.intern("R");
        let out_of_range = Pattern {
            atoms: vec![atom(r, &[0, 3])],
            var_count: 2,
        };
        assert!(matches!(
            count_matches(&db, &out_of_range),
            Err(PatternError::VarOutOfRange { var: 3 })
        ));
        let unused = Pattern {
            atoms: vec![atom(r, &[0, 0])],
            var_count: 2,
        };
        assert!(matches!(
            count_matches(&db, &unused),
            Err(PatternError::UnusedVariable { var: 1 })
        ));
        let bad_arity = Pattern {
            atoms: vec![atom(r, &[0])],
            var_count: 1,
        };
        assert!(matches!(
            count_matches(&db, &bad_arity),
            Err(PatternError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn disconnected_pattern_still_correct() {
        let (db, mut i) = db_from_ints(&[("R", &[&[1], &[2]]), ("S", &[&[5, 6], &[7, 8]])]);
        let (r, s) = (i.intern("R"), i.intern("S"));
        let p = Pattern {
            atoms: vec![atom(r, &[0]), atom(s, &[1, 2])],
            var_count: 3,
        };
        assert_eq!(count_matches(&db, &p).unwrap(), 4);
    }

    #[test]
    fn triangle_query() {
        // E(A,B), F(B,C), G(C,A) over a directed triangle split across
        // three relations.
        let (db, mut i) = db_from_ints(&[
            ("E", &[&[1, 2], &[2, 3]]),
            ("F", &[&[2, 3], &[3, 1]]),
            ("G", &[&[3, 1], &[1, 2]]),
        ]);
        let (e, f, g) = (i.intern("E"), i.intern("F"), i.intern("G"));
        let p = Pattern {
            atoms: vec![atom(e, &[0, 1]), atom(f, &[1, 2]), atom(g, &[2, 0])],
            var_count: 3,
        };
        // Matches: (1,2,3) via E(1,2),F(2,3),G(3,1); and (2,3,1) via
        // E(2,3),F(3,1),G(1,2).
        assert_eq!(count_matches(&db, &p).unwrap(), 2);
    }
}
