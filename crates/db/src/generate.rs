//! Synthetic workload generators.
//!
//! The paper specifies no datasets (its claims are data-complexity
//! statements), so every experiment runs on controlled synthetic inputs:
//! uniform or Zipf-skewed relations, tuple-independent probability
//! assignments, repair databases, and random graphs for the BCBS
//! hardness reduction. All generators are seeded for reproducibility.

use crate::database::{Database, Fact};
use crate::tuple::Tuple;
use crate::value::{Interner, Sym, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used across the test/bench suites.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A Zipf(s) sampler over `{0, …, n-1}` via an explicit cumulative
/// table (exact inverse-CDF sampling; table build is `O(n)`).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution with exponent `s >= 0` over `n`
    /// outcomes (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite/non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Samples an index in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// How column values are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnDist {
    /// Uniform over `0..domain`.
    Uniform {
        /// Domain size.
        domain: u64,
    },
    /// Zipf-skewed over `0..domain` with exponent `s`.
    Zipf {
        /// Domain size.
        domain: u64,
        /// Skew exponent (`0.0` = uniform).
        s: f64,
    },
}

impl ColumnDist {
    /// Samples one value from the distribution. For hot loops prefer
    /// [`fill_relation`], which caches the Zipf tables per column.
    pub fn sample(&self, rng: &mut impl Rng) -> i64 {
        match *self {
            ColumnDist::Uniform { domain } => rng.gen_range(0..domain) as i64,
            ColumnDist::Zipf { domain, s } => {
                // Builds the table per call; acceptable for one-off use.
                Zipf::new(domain as usize, s).sample(rng) as i64
            }
        }
    }
}

/// Fills `rel` (declared with `columns.len()` arity) with up to `count`
/// *distinct* random tuples; returns the number actually inserted
/// (collisions under heavy skew may reduce it).
pub fn fill_relation(
    db: &mut Database,
    rel: Sym,
    columns: &[ColumnDist],
    count: usize,
    rng: &mut impl Rng,
) -> usize {
    // Pre-build Zipf tables once per column.
    enum Sampler {
        Uniform(u64),
        Zipf(Zipf),
    }
    let samplers: Vec<Sampler> = columns
        .iter()
        .map(|c| match *c {
            ColumnDist::Uniform { domain } => Sampler::Uniform(domain),
            ColumnDist::Zipf { domain, s } => Sampler::Zipf(Zipf::new(domain as usize, s)),
        })
        .collect();
    db.declare(rel, columns.len());
    let mut inserted = 0;
    // Bounded retries so pathological configurations (tiny domains)
    // terminate: expected distinct coupon-collector behaviour is fine.
    let max_attempts = count.saturating_mul(20) + 100;
    let mut attempts = 0;
    while inserted < count && attempts < max_attempts {
        attempts += 1;
        let tuple: Tuple = samplers
            .iter()
            .map(|s| {
                Value::Int(match s {
                    Sampler::Uniform(domain) => rng.gen_range(0..*domain) as i64,
                    Sampler::Zipf(z) => z.sample(rng) as i64,
                })
            })
            .collect();
        if db.insert_tuple(rel, tuple) {
            inserted += 1;
        }
    }
    inserted
}

/// Configuration for a whole random database over named relations.
#[derive(Debug, Clone)]
pub struct DbSpec<'a> {
    /// `(relation name, arity)` pairs.
    pub relations: &'a [(&'a str, usize)],
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Shared column distribution.
    pub column: ColumnDist,
}

/// Generates a database according to `spec`.
pub fn random_database(spec: &DbSpec<'_>, interner: &mut Interner, rng: &mut impl Rng) -> Database {
    let mut db = Database::new();
    for &(name, arity) in spec.relations {
        let rel = interner.intern(name);
        let columns = vec![spec.column; arity];
        fill_relation(&mut db, rel, &columns, spec.tuples_per_relation, rng);
    }
    db
}

/// Assigns an independent probability in `[lo, hi]` to every fact —
/// a tuple-independent probabilistic database over `db`.
pub fn random_probabilities(
    db: &Database,
    lo: f64,
    hi: f64,
    rng: &mut impl Rng,
) -> Vec<(Fact, f64)> {
    assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi);
    db.facts()
        .into_iter()
        .map(|f| {
            let p = rng.gen_range(lo..=hi);
            (f, p)
        })
        .collect()
}

/// Splits the facts of `db` into (exogenous, endogenous) with the given
/// endogenous fraction — input shape for Shapley-value computation.
pub fn random_endogenous_split(
    db: &Database,
    endogenous_fraction: f64,
    rng: &mut impl Rng,
) -> (Vec<Fact>, Vec<Fact>) {
    let mut exo = Vec::new();
    let mut endo = Vec::new();
    for f in db.facts() {
        if rng.gen::<f64>() < endogenous_fraction {
            endo.push(f);
        } else {
            exo.push(f);
        }
    }
    (exo, endo)
}

/// An undirected self-loop-free graph as an edge list over `0..n`.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Edges `(u, v)` with `u < v`.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&(a, b))
    }
}

/// Erdős–Rényi `G(n, p)` graph.
pub fn random_graph(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    Graph { n, edges }
}

/// A graph containing a planted `k × k` complete bipartite subgraph plus
/// random noise edges — the "yes"-instance generator for BCBS.
pub fn planted_biclique(n: usize, k: usize, noise_p: f64, rng: &mut impl Rng) -> Graph {
    assert!(2 * k <= n, "planted biclique needs 2k <= n");
    let mut g = random_graph(n, noise_p, rng);
    // Plant K_{k,k} on vertices {0..k} x {k..2k}.
    for u in 0..k as u32 {
        for v in k as u32..2 * k as u32 {
            if !g.has_edge(u, v) {
                g.edges.push((u.min(v), u.max(v)));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_uniform_limit() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform-ish expected, got {c}");
        }
    }

    #[test]
    fn zipf_skew_prefers_small_indices() {
        let z = Zipf::new(100, 1.5);
        let mut r = rng(2);
        let mut zero = 0;
        for _ in 0..10_000 {
            if z.sample(&mut r) == 0 {
                zero += 1;
            }
        }
        // P(0) ~ 1/zeta(1.5, 100) ~ 0.39
        assert!(zero > 2500, "head should dominate under skew, got {zero}");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn fill_relation_generates_distinct() {
        let mut i = Interner::new();
        let mut db = Database::new();
        let rel = i.intern("R");
        let mut r = rng(3);
        let n = fill_relation(
            &mut db,
            rel,
            &[
                ColumnDist::Uniform { domain: 1000 },
                ColumnDist::Uniform { domain: 1000 },
            ],
            500,
            &mut r,
        );
        assert_eq!(n, 500);
        assert_eq!(db.relation(rel).unwrap().len(), 500);
    }

    #[test]
    fn fill_relation_saturates_small_domain() {
        let mut i = Interner::new();
        let mut db = Database::new();
        let rel = i.intern("R");
        let mut r = rng(4);
        let n = fill_relation(
            &mut db,
            rel,
            &[ColumnDist::Uniform { domain: 3 }],
            100,
            &mut r,
        );
        assert!(n <= 3);
    }

    #[test]
    fn random_database_respects_spec() {
        let mut i = Interner::new();
        let mut r = rng(5);
        let spec = DbSpec {
            relations: &[("R", 2), ("S", 1)],
            tuples_per_relation: 50,
            column: ColumnDist::Uniform { domain: 10_000 },
        };
        let db = random_database(&spec, &mut i, &mut r);
        assert_eq!(db.fact_count(), 100);
        assert_eq!(db.relation(i.get("R").unwrap()).unwrap().arity(), 2);
    }

    #[test]
    fn probabilities_in_range_and_deterministic() {
        let mut i = Interner::new();
        let mut r = rng(6);
        let spec = DbSpec {
            relations: &[("R", 1)],
            tuples_per_relation: 20,
            column: ColumnDist::Uniform { domain: 100 },
        };
        let db = random_database(&spec, &mut i, &mut r);
        let p1 = random_probabilities(&db, 0.2, 0.8, &mut rng(7));
        let p2 = random_probabilities(&db, 0.2, 0.8, &mut rng(7));
        assert_eq!(p1.len(), 20);
        assert!(p1.iter().all(|&(_, p)| (0.2..=0.8).contains(&p)));
        assert_eq!(p1, p2, "same seed must reproduce");
    }

    #[test]
    fn endogenous_split_partitions() {
        let mut i = Interner::new();
        let mut r = rng(8);
        let spec = DbSpec {
            relations: &[("R", 1)],
            tuples_per_relation: 30,
            column: ColumnDist::Uniform { domain: 1000 },
        };
        let db = random_database(&spec, &mut i, &mut r);
        let (exo, endo) = random_endogenous_split(&db, 0.5, &mut rng(9));
        assert_eq!(exo.len() + endo.len(), 30);
    }

    #[test]
    fn random_graph_well_formed() {
        let g = random_graph(20, 0.3, &mut rng(10));
        assert_eq!(g.n, 20);
        for &(u, v) in &g.edges {
            assert!(u < v, "edges normalized");
            assert!((v as usize) < g.n);
        }
    }

    #[test]
    fn planted_biclique_contains_plant() {
        let g = planted_biclique(12, 3, 0.1, &mut rng(11));
        for u in 0..3 {
            for v in 3..6 {
                assert!(g.has_edge(u, v));
            }
        }
    }
}
