//! Tuples of domain values.

use crate::value::{Interner, Value};
use std::fmt;

/// An immutable tuple of [`Value`]s — one row of a relation, or one
/// assignment to a set of variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty (nullary) tuple, the `()` of a query `Q() :- R()`.
    pub fn empty() -> Self {
        Tuple(Box::new([]))
    }

    /// Builds a tuple of integer values (test and generator convenience).
    pub fn ints(values: &[i64]) -> Self {
        Tuple(values.iter().map(|&v| Value::Int(v)).collect())
    }

    /// Number of values (the arity).
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.arity()`.
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }

    /// Projects the tuple onto the given positions, in order.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p]).collect())
    }

    /// Renders the tuple as `(v1, v2, …)` using `interner`.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Tuple, &'a Interner);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                for (i, v) in self.0 .0.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v.display(self.1))?;
                }
                write!(f, ")")
            }
        }
        D(self, interner)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::ints(&[1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), Value::Int(2));
        assert_eq!(t.values(), &[Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(t, Tuple::ints(&[]));
    }

    #[test]
    fn projection_reorders_and_repeats() {
        let t = Tuple::ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::ints(&[30, 10]));
        assert_eq!(t.project(&[1, 1]), Tuple::ints(&[20, 20]));
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn display_uses_interner() {
        let mut i = Interner::new();
        let t: Tuple = vec![Value::int(5), i.value("x")].into();
        assert_eq!(t.display(&i).to_string(), "(5, x)");
    }

    #[test]
    fn equality_and_hash_as_map_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Tuple::ints(&[1, 2]), "a");
        assert_eq!(m.get(&Tuple::ints(&[1, 2])), Some(&"a"));
        assert_eq!(m.get(&Tuple::ints(&[2, 1])), None);
    }
}
