//! Domain values and string interning.
//!
//! The paper draws values from a countably infinite domain `Dom`. We
//! represent a value as either a 64-bit integer or an interned string
//! symbol; interning keeps [`Value`] `Copy` (16 bytes) so tuples hash and
//! compare fast, which dominates the cost of the annotated-relation
//! operations in the unifying algorithm.

use std::collections::HashMap;
use std::fmt;

/// An interned string symbol. Only meaningful relative to the
/// [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// A domain value: an integer or an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// An interned string constant.
    Str(Sym),
}

impl Value {
    /// Convenience constructor for integer values.
    #[inline]
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Renders the value using `interner` to resolve string symbols.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Value, &'a Interner);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Value::Int(i) => write!(f, "{i}"),
                    Value::Str(s) => write!(f, "{}", self.1.resolve(*s)),
                }
            }
        }
        D(self, interner)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

/// A bidirectional string ↔ [`Sym`] table.
///
/// All databases participating in one problem instance (e.g. `D` and the
/// repair database `D_r` of Bag-Set Maximization) must share one
/// interner so their facts are directly comparable.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    lookup: HashMap<String, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol (stable across repeat calls).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_owned());
        self.lookup.insert(s.to_owned(), sym);
        sym
    }

    /// Returns the symbol for `s` if it was interned before.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Interns a string value directly into a [`Value`].
    pub fn value(&mut self, s: &str) -> Value {
        Value::Str(self.intern(s))
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut i = Interner::new();
        let a = i.intern("alice");
        let b = i.intern("bob");
        let a2 = i.intern("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "alice");
        assert_eq!(i.resolve(b), "bob");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_without_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
    }

    #[test]
    fn value_ordering_and_display() {
        let mut i = Interner::new();
        let v1 = Value::int(3);
        let v2 = i.value("three");
        assert_ne!(v1, v2);
        assert_eq!(v1.display(&i).to_string(), "3");
        assert_eq!(v2.display(&i).to_string(), "three");
        assert!(Value::int(1) < Value::int(2));
    }

    #[test]
    fn value_is_small_and_copy() {
        assert!(std::mem::size_of::<Value>() <= 16);
        let v = Value::int(1);
        let w = v; // Copy
        assert_eq!(v, w);
    }
}
