//! Database instances: named relations over a shared interner, plus the
//! [`Fact`] type used by the repair / endogenous-fact machinery.

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::{Interner, Sym};
use std::collections::BTreeMap;
use std::fmt;

/// A single fact `R(x̄)`: a relation symbol plus a tuple.
///
/// Facts are the currency of all three problems: they carry
/// probabilities (PQE), repair budgets (Bag-Set Maximization), and
/// endogenous/exogenous designations (Shapley values).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The relation symbol (interned relation name).
    pub rel: Sym,
    /// The argument tuple.
    pub tuple: Tuple,
}

impl Fact {
    /// Builds a fact.
    pub fn new(rel: Sym, tuple: Tuple) -> Self {
        Fact { rel, tuple }
    }

    /// Renders the fact as `R(v1, …)` using `interner`.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Fact, &'a Interner);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    "{}{}",
                    self.1.resolve(self.0.rel),
                    self.0.tuple.display(self.1)
                )
            }
        }
        D(self, interner)
    }
}

/// A set database instance `D`: a map from relation symbols to
/// [`Relation`]s. The paper's `|D|` (sum of relation cardinalities) is
/// [`Database::fact_count`].
///
/// Every *effective* mutation (an insert that was new, a remove that
/// was present) bumps the touched relation's **version counter**
/// ([`Database::version`]). Derived structures that snapshot a
/// relation's content — the cached dictionary encodings of
/// `hq_unify::EncodedDb` — record the version they were built at and
/// compare it on use, which detects *any* divergence, including
/// interior same-size mutations that content spot checks miss.
/// Versions are bookkeeping, not content: equality ignores them.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<Sym, Relation>,
    /// Effective-mutation counter per relation (absent = 0: never
    /// mutated since the relation was declared empty — declaring does
    /// not bump).
    versions: BTreeMap<Sym, u64>,
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        // Versions record *history*, not state: two databases holding
        // the same facts are equal however they got there.
        self.relations == other.relations
    }
}

impl Eq for Database {}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation with the given arity (idempotent).
    ///
    /// # Panics
    /// Panics if the relation exists with a different arity.
    pub fn declare(&mut self, rel: Sym, arity: usize) -> &mut Relation {
        let r = self
            .relations
            .entry(rel)
            .or_insert_with(|| Relation::new(arity));
        assert_eq!(r.arity(), arity, "relation redeclared with different arity");
        r
    }

    /// Inserts a fact, declaring the relation from the tuple arity if
    /// needed. Returns `true` if the fact was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        let arity = fact.tuple.arity();
        let rel = fact.rel;
        let new = self.declare(rel, arity).insert(fact.tuple);
        if new {
            *self.versions.entry(rel).or_insert(0) += 1;
        }
        new
    }

    /// Inserts a tuple into `rel`. Returns `true` if new.
    pub fn insert_tuple(&mut self, rel: Sym, tuple: Tuple) -> bool {
        self.insert(Fact::new(rel, tuple))
    }

    /// Inserts a batch of facts with one merge pass per touched
    /// relation ([`Relation::insert_batch`]); returns how many were
    /// new. Equivalent to inserting them one by one — including the
    /// version accounting, which advances by the number of effective
    /// inserts per relation.
    ///
    /// # Panics
    /// Panics if a fact's arity conflicts with its (declared or
    /// batch-established) relation arity.
    pub fn insert_batch(&mut self, facts: impl IntoIterator<Item = Fact>) -> usize {
        let mut by_rel: BTreeMap<Sym, Vec<Tuple>> = BTreeMap::new();
        for f in facts {
            by_rel.entry(f.rel).or_default().push(f.tuple);
        }
        let mut total = 0;
        for (rel, tuples) in by_rel {
            let arity = tuples[0].arity();
            let added = self.declare(rel, arity).insert_batch(tuples);
            if added > 0 {
                *self.versions.entry(rel).or_insert(0) += added as u64;
            }
            total += added;
        }
        total
    }

    /// Removes a fact. Returns `true` if it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let removed = self
            .relations
            .get_mut(&fact.rel)
            .is_some_and(|r| r.remove(&fact.tuple));
        if removed {
            *self.versions.entry(fact.rel).or_insert(0) += 1;
        }
        removed
    }

    /// The relation's effective-mutation counter: bumped by every
    /// insert that was new and every remove that was present (so an
    /// interior remove-then-insert of the same size bumps twice).
    /// `0` for relations never mutated. Snapshot-style caches compare
    /// this to detect staleness exactly, in `O(1)`.
    pub fn version(&self, rel: Sym) -> u64 {
        self.versions.get(&rel).copied().unwrap_or(0)
    }

    /// Whether the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.rel)
            .is_some_and(|r| r.contains(&fact.tuple))
    }

    /// The relation instance for `rel`, if declared.
    pub fn relation(&self, rel: Sym) -> Option<&Relation> {
        self.relations.get(&rel)
    }

    /// Iterates `(symbol, relation)` pairs in symbol order.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> {
        self.relations.iter().map(|(&s, r)| (s, r))
    }

    /// Total number of facts, the paper's `|D|`.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Whether the database holds no facts.
    pub fn is_empty(&self) -> bool {
        self.fact_count() == 0
    }

    /// Iterates all facts in deterministic (symbol, tuple) order.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::with_capacity(self.fact_count());
        for (&rel, r) in &self.relations {
            for t in r.sorted() {
                out.push(Fact::new(rel, t.clone()));
            }
        }
        out
    }

    /// The union `self ∪ other` (set semantics per relation).
    ///
    /// # Panics
    /// Panics if a shared relation symbol has conflicting arities.
    pub fn union(&self, other: &Database) -> Database {
        let mut out = self.clone();
        for (&rel, r) in &other.relations {
            out.declare(rel, r.arity());
            for t in r {
                out.insert_tuple(rel, t.clone());
            }
        }
        out
    }

    /// Facts of `self` not present in `other` (deterministic order).
    pub fn difference(&self, other: &Database) -> Vec<Fact> {
        self.facts()
            .into_iter()
            .filter(|f| !other.contains(f))
            .collect()
    }

    /// Renders the full instance using `interner` (sorted, one fact per
    /// line) — used by the CLI and golden tests.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Database, &'a Interner);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for fact in self.0.facts() {
                    writeln!(f, "{}", fact.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, interner)
    }
}

/// Convenience builder used heavily in tests and examples: constructs a
/// database and interner from `(relation name, rows)` groups of integer
/// tuples.
pub fn db_from_ints(groups: &[(&str, &[&[i64]])]) -> (Database, Interner) {
    let mut interner = Interner::new();
    let mut db = Database::new();
    for (name, rows) in groups {
        let rel = interner.intern(name);
        for row in *rows {
            db.insert_tuple(rel, Tuple::ints(row));
        }
    }
    (db, interner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut i = Interner::new();
        let r = i.intern("R");
        let mut db = Database::new();
        let f = Fact::new(r, Tuple::ints(&[1, 2]));
        assert!(db.insert(f.clone()));
        assert!(!db.insert(f.clone()));
        assert!(db.contains(&f));
        assert_eq!(db.fact_count(), 1);
        assert!(db.remove(&f));
        assert!(!db.contains(&f));
        assert!(db.is_empty());
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn arity_conflict_panics() {
        let mut i = Interner::new();
        let r = i.intern("R");
        let mut db = Database::new();
        db.insert_tuple(r, Tuple::ints(&[1]));
        db.insert_tuple(r, Tuple::ints(&[1, 2]));
    }

    #[test]
    fn versions_track_effective_mutations_only() {
        let mut i = Interner::new();
        let r = i.intern("R");
        let s = i.intern("S");
        let mut db = Database::new();
        assert_eq!(db.version(r), 0);
        let f = Fact::new(r, Tuple::ints(&[1]));
        assert!(db.insert(f.clone()));
        assert_eq!(db.version(r), 1);
        // Redundant insert and absent remove are not mutations.
        assert!(!db.insert(f.clone()));
        assert!(!db.remove(&Fact::new(r, Tuple::ints(&[9]))));
        assert_eq!(db.version(r), 1);
        assert_eq!(db.version(s), 0, "untouched relation stays at 0");
        // An interior same-size swap bumps twice — this is exactly the
        // case content spot checks can miss.
        assert!(db.remove(&f));
        assert!(db.insert(Fact::new(r, Tuple::ints(&[2]))));
        assert_eq!(db.version(r), 3);
        // Versions are history, not content: equality ignores them.
        let mut other = Database::new();
        other.insert(Fact::new(r, Tuple::ints(&[2])));
        assert_eq!(db, other);
        assert_ne!(db.version(r), other.version(r));
    }

    #[test]
    fn union_and_difference() {
        let (d1, mut i) = db_from_ints(&[("R", &[&[1], &[2]])]);
        let r = i.intern("R");
        let s = i.intern("S");
        let mut d2 = Database::new();
        d2.insert_tuple(r, Tuple::ints(&[2]));
        d2.insert_tuple(r, Tuple::ints(&[3]));
        d2.insert_tuple(s, Tuple::ints(&[9, 9]));
        let u = d1.union(&d2);
        assert_eq!(u.fact_count(), 4);
        let diff = d2.difference(&d1);
        assert_eq!(diff.len(), 2);
        assert!(diff.contains(&Fact::new(r, Tuple::ints(&[3]))));
        assert!(diff.contains(&Fact::new(s, Tuple::ints(&[9, 9]))));
    }

    #[test]
    fn facts_are_sorted_and_displayable() {
        let (db, i) = db_from_ints(&[("S", &[&[2]]), ("R", &[&[1]])]);
        let facts = db.facts();
        assert_eq!(facts.len(), 2);
        let rendered: Vec<String> = facts.iter().map(|f| f.display(&i).to_string()).collect();
        // BTreeMap orders by symbol id: R was interned second in the
        // groups list? No — groups insert S first, so S has symbol 0.
        assert!(rendered.contains(&"R(1)".to_string()));
        assert!(rendered.contains(&"S(2)".to_string()));
    }

    #[test]
    fn display_lists_every_fact() {
        let (db, i) = db_from_ints(&[("R", &[&[1, 5]]), ("S", &[&[1, 1], &[1, 2]])]);
        let text = db.display(&i).to_string();
        assert!(text.contains("R(1, 5)"));
        assert!(text.contains("S(1, 1)"));
        assert!(text.contains("S(1, 2)"));
        assert_eq!(text.lines().count(), 3);
    }
}
