//! Set relations: named collections of distinct tuples of fixed arity.

use crate::tuple::Tuple;
use std::collections::BTreeSet;

/// A *set* relation instance (the paper's input model never allows
/// duplicate facts; bags only appear in query *outputs*).
///
/// Tuples are kept in an ordered set: iteration is always sorted,
/// which the annotated-relation storage layer exploits to build its
/// columnar code matrices without re-sorting, and which makes every
/// display/bench/test path deterministic by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// The arity every tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the relation arity.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.arity(),
            self.arity
        );
        self.tuples.insert(tuple)
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.tuples.remove(tuple)
    }

    /// Whether the tuple is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Returns the tuples in sorted order (kept for API compatibility;
    /// iteration is already sorted, so this is a plain collect).
    pub fn sorted(&self) -> Vec<&Tuple> {
        self.tuples.iter().collect()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::ints(&[1, 2])));
        assert!(!r.insert(Tuple::ints(&[1, 2])));
        assert!(r.insert(Tuple::ints(&[2, 1])));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1]));
    }

    #[test]
    fn remove_and_contains() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[7]));
        assert!(r.contains(&Tuple::ints(&[7])));
        assert!(r.remove(&Tuple::ints(&[7])));
        assert!(!r.remove(&Tuple::ints(&[7])));
        assert!(r.is_empty());
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(1);
        for v in [5, 1, 3, 2, 4] {
            r.insert(Tuple::ints(&[v]));
        }
        let sorted: Vec<i64> = r
            .sorted()
            .iter()
            .map(|t| match t.get(0) {
                crate::value::Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn nullary_relation_holds_one_tuple() {
        let mut r = Relation::new(0);
        assert!(r.insert(Tuple::empty()));
        assert!(!r.insert(Tuple::empty()));
        assert_eq!(r.len(), 1);
    }
}
