//! Set relations: named collections of distinct tuples of fixed arity.

use crate::tuple::Tuple;

/// How many staged inserts accumulate before they merge into the bulk
/// vector. Small enough that the stage's binary-searched insertion
/// shifts stay cheap (a few cache lines), large enough that a burst of
/// `n` inserts costs `O(n log n + n·|bulk|/STAGE_CAP)` moved tuples
/// instead of the `O(n·|bulk|)` a direct sorted-vector insert would.
const STAGE_CAP: usize = 512;

/// A *set* relation instance (the paper's input model never allows
/// duplicate facts; bags only appear in query *outputs*).
///
/// Tuples are kept in **two sorted, deduplicated, disjoint vectors**:
/// the bulk plus a small staged buffer of recent inserts that merges
/// into the bulk when it reaches [`STAGE_CAP`] entries (or when a batch
/// insert flushes it). Iteration interleaves the two — always sorted,
/// which the annotated-relation storage layer exploits to build its
/// columnar code matrices without re-sorting, and which makes every
/// display/bench/test path deterministic by construction. Compared with
/// the ordered-set representation this replaces, the contiguous layout
/// reads with no pointer chasing and bulk-builds with one merge pass.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    /// The sorted bulk.
    tuples: Vec<Tuple>,
    /// Staged recent inserts: sorted, deduplicated, disjoint from
    /// `tuples`.
    stage: Vec<Tuple>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        // The bulk/stage split is bookkeeping, not content: two
        // relations holding the same tuples are equal however their
        // inserts were batched.
        self.arity == other.arity && self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Relation {}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
            stage: Vec::new(),
        }
    }

    /// The arity every tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the relation arity.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.arity(),
            self.arity
        );
        if self.tuples.binary_search(&tuple).is_ok() {
            return false;
        }
        match self.stage.binary_search(&tuple) {
            Ok(_) => false,
            Err(pos) => {
                self.stage.insert(pos, tuple);
                if self.stage.len() >= STAGE_CAP {
                    self.flush();
                }
                true
            }
        }
    }

    /// Inserts a batch of tuples in one merge pass; returns how many
    /// were new. Equivalent to (but much cheaper than) inserting them
    /// one by one.
    ///
    /// # Panics
    /// Panics if any tuple's arity does not match the relation arity.
    pub fn insert_batch(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> usize {
        let mut batch: Vec<Tuple> = tuples
            .into_iter()
            .inspect(|t| {
                assert_eq!(
                    t.arity(),
                    self.arity,
                    "tuple arity {} does not match relation arity {}",
                    t.arity(),
                    self.arity
                );
            })
            .collect();
        batch.sort_unstable();
        batch.dedup();
        batch.retain(|t| !self.contains(t));
        if batch.is_empty() {
            return 0;
        }
        let added = batch.len();
        self.flush();
        self.tuples = merge_disjoint(std::mem::take(&mut self.tuples), batch);
        added
    }

    /// Merges the staged inserts into the bulk vector.
    fn flush(&mut self) {
        if self.stage.is_empty() {
            return;
        }
        let stage = std::mem::take(&mut self.stage);
        self.tuples = merge_disjoint(std::mem::take(&mut self.tuples), stage);
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        if let Ok(pos) = self.tuples.binary_search(tuple) {
            self.tuples.remove(pos);
            true
        } else if let Ok(pos) = self.stage.binary_search(tuple) {
            self.stage.remove(pos);
            true
        } else {
            false
        }
    }

    /// Whether the tuple is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.binary_search(tuple).is_ok() || self.stage.binary_search(tuple).is_ok()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len() + self.stage.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty() && self.stage.is_empty()
    }

    /// Iterates over the tuples in ascending order (interleaving the
    /// bulk and the staged inserts).
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            bulk: &self.tuples,
            stage: &self.stage,
        }
    }

    /// Returns the tuples in sorted order (kept for API compatibility;
    /// iteration is already sorted, so this is a plain collect).
    pub fn sorted(&self) -> Vec<&Tuple> {
        self.iter().collect()
    }
}

/// Merges two sorted vectors with no common elements into one.
fn merge_disjoint(a: Vec<Tuple>, b: Vec<Tuple>) -> Vec<Tuple> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if x < y {
                    out.push(a.next().expect("peeked"));
                } else {
                    out.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(a);
                return out;
            }
            (None, _) => {
                out.extend(b);
                return out;
            }
        }
    }
}

/// Sorted iterator over a relation's tuples: a two-way interleave of
/// the bulk and staged vectors (disjoint, so no equality case).
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    bulk: &'a [Tuple],
    stage: &'a [Tuple],
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match (self.bulk.first(), self.stage.first()) {
            (Some(b), Some(s)) => {
                if b < s {
                    self.bulk = &self.bulk[1..];
                    Some(b)
                } else {
                    self.stage = &self.stage[1..];
                    Some(s)
                }
            }
            (Some(b), None) => {
                self.bulk = &self.bulk[1..];
                Some(b)
            }
            (None, Some(s)) => {
                self.stage = &self.stage[1..];
                Some(s)
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bulk.len() + self.stage.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::ints(&[1, 2])));
        assert!(!r.insert(Tuple::ints(&[1, 2])));
        assert!(r.insert(Tuple::ints(&[2, 1])));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1]));
    }

    #[test]
    fn remove_and_contains() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[7]));
        assert!(r.contains(&Tuple::ints(&[7])));
        assert!(r.remove(&Tuple::ints(&[7])));
        assert!(!r.remove(&Tuple::ints(&[7])));
        assert!(r.is_empty());
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(1);
        for v in [5, 1, 3, 2, 4] {
            r.insert(Tuple::ints(&[v]));
        }
        let sorted: Vec<i64> = r
            .sorted()
            .iter()
            .map(|t| match t.get(0) {
                crate::value::Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn nullary_relation_holds_one_tuple() {
        let mut r = Relation::new(0);
        assert!(r.insert(Tuple::empty()));
        assert!(!r.insert(Tuple::empty()));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn staged_inserts_stay_sorted_across_flushes() {
        // Cross the stage capacity several times with an adversarial
        // (descending, interleaved) order and check that iteration,
        // lookups and removals all see one consistent sorted set.
        let mut r = Relation::new(1);
        let n = 3 * STAGE_CAP as i64 + 17;
        for v in (0..n).rev() {
            assert!(r.insert(Tuple::ints(&[v])));
        }
        for v in 0..n {
            assert!(!r.insert(Tuple::ints(&[v])), "duplicate {v} re-admitted");
        }
        assert_eq!(r.len(), n as usize);
        let got: Vec<i64> = r
            .iter()
            .map(|t| match t.get(0) {
                crate::value::Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
        assert!(r.remove(&Tuple::ints(&[n - 1])));
        assert!(r.remove(&Tuple::ints(&[0])));
        assert_eq!(r.len(), n as usize - 2);
    }

    #[test]
    fn insert_batch_counts_new_tuples_only() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[2]));
        let added = r.insert_batch([4, 1, 2, 4, 3].map(|v| Tuple::ints(&[v])));
        assert_eq!(added, 3, "2 was present, 4 duplicated in the batch");
        assert_eq!(r.len(), 4);
        // A batched build equals the same set built one at a time.
        let mut serial = Relation::new(1);
        for v in [1, 2, 3, 4] {
            serial.insert(Tuple::ints(&[v]));
        }
        assert_eq!(r, serial);
        assert_eq!(r.insert_batch(std::iter::empty()), 0);
    }

    #[test]
    fn equality_ignores_the_stage_split() {
        let mut batched = Relation::new(1);
        batched.insert_batch((0..10).map(|v| Tuple::ints(&[v])));
        let mut staged = Relation::new(1);
        for v in (0..10).rev() {
            staged.insert(Tuple::ints(&[v]));
        }
        assert_eq!(batched, staged);
        staged.remove(&Tuple::ints(&[5]));
        assert_ne!(batched, staged);
    }
}
