//! # hq-db — relational database substrate
//!
//! The set-database model of *A Unifying Algorithm for Hierarchical
//! Queries* (PODS 2025): interned domain values, tuples, set relations,
//! database instances, a text loader, a backtracking bag-set
//! join/count engine (ground truth for every brute-force baseline), and
//! seeded synthetic workload generators.
//!
//! This crate knows nothing about queries-as-ASTs or 2-monoids; it only
//! provides data and the generic conjunctive-[`Pattern`](join::Pattern)
//! evaluator that higher layers compile into.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod dict;
pub mod generate;
pub mod join;
pub mod relation;
pub mod text;
pub mod tuple;
pub mod value;

pub use database::{db_from_ints, Database, Fact};
pub use dict::{RowCode, ValueDict};
pub use join::{all_matches, count_matches, satisfiable, Pattern, PatternAtom};
pub use relation::Iter as RelationIter;
pub use relation::Relation;
pub use tuple::Tuple;
pub use value::{Interner, Sym, Value};
