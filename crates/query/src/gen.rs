//! Random query generators for property tests and benchmarks.
//!
//! * [`random_hierarchical`] builds a random variable forest and takes
//!   atoms to be node-to-root paths — *exactly* the hierarchical
//!   queries, by Proposition 5.5.
//! * [`random_query`] samples arbitrary SJF-BCQs (for differential
//!   testing of the three hierarchy characterisations).
//! * [`random_non_hierarchical`] rejection-samples non-hierarchical
//!   queries, falling back to embedding the canonical `R, S, T`
//!   pattern.

use crate::ast::Query;
use crate::hierarchy::is_hierarchical;
use rand::Rng;

fn var_name(i: usize) -> String {
    format!("V{i}")
}

fn rel_name(i: usize) -> String {
    format!("R{i}")
}

/// Generates a random hierarchical query with up to `max_vars`
/// variables and between 1 and `max_atoms` atoms.
pub fn random_hierarchical(rng: &mut impl Rng, max_vars: usize, max_atoms: usize) -> Query {
    let n_vars = rng.gen_range(0..=max_vars.max(1));
    // Random forest: parent[i] in 0..i or none.
    let mut parent: Vec<Option<usize>> = Vec::with_capacity(n_vars);
    for i in 0..n_vars {
        if i == 0 || rng.gen_bool(0.3) {
            parent.push(None);
        } else {
            parent.push(Some(rng.gen_range(0..i)));
        }
    }
    let n_atoms = rng.gen_range(1..=max_atoms.max(1));
    let mut atoms: Vec<(String, Vec<String>)> = Vec::with_capacity(n_atoms);
    for a in 0..n_atoms {
        let vars: Vec<String> = if n_vars == 0 || rng.gen_bool(0.1) {
            Vec::new() // occasional nullary atom
        } else {
            let mut node = rng.gen_range(0..n_vars);
            let mut path = vec![var_name(node)];
            while let Some(p) = parent[node] {
                path.push(var_name(p));
                node = p;
            }
            path
        };
        atoms.push((rel_name(a), vars));
    }
    build(&atoms)
}

/// Generates an arbitrary random SJF-BCQ (hierarchical or not).
pub fn random_query(rng: &mut impl Rng, max_vars: usize, max_atoms: usize) -> Query {
    let n_vars = rng.gen_range(1..=max_vars.max(1));
    let n_atoms = rng.gen_range(1..=max_atoms.max(1));
    let mut atoms: Vec<(String, Vec<String>)> = Vec::with_capacity(n_atoms);
    for a in 0..n_atoms {
        let arity = rng.gen_range(0..=n_vars.min(4));
        // Sample `arity` distinct variables.
        let mut pool: Vec<usize> = (0..n_vars).collect();
        let mut vars = Vec::with_capacity(arity);
        for _ in 0..arity {
            let k = rng.gen_range(0..pool.len());
            vars.push(var_name(pool.swap_remove(k)));
        }
        atoms.push((rel_name(a), vars));
    }
    build(&atoms)
}

/// Generates a random *non-hierarchical* query. Tries rejection
/// sampling first; falls back to the canonical `R(X), S(X,Y), T(Y)`
/// core extended with random extra atoms.
pub fn random_non_hierarchical(rng: &mut impl Rng, max_vars: usize, max_atoms: usize) -> Query {
    for _ in 0..64 {
        let q = random_query(rng, max_vars.max(2), max_atoms.max(3));
        if !is_hierarchical(&q) {
            return q;
        }
    }
    // Deterministic fallback: the canonical hard pattern plus padding.
    let extra = rng.gen_range(0..=max_atoms.saturating_sub(3));
    let mut atoms: Vec<(String, Vec<String>)> = vec![
        ("R".into(), vec!["X".into()]),
        ("S".into(), vec!["X".into(), "Y".into()]),
        ("T".into(), vec!["Y".into()]),
    ];
    for i in 0..extra {
        atoms.push((format!("P{i}"), vec![format!("W{i}")]));
    }
    let q = build(&atoms);
    debug_assert!(!is_hierarchical(&q));
    q
}

fn build(atoms: &[(String, Vec<String>)]) -> Query {
    let borrowed: Vec<(&str, Vec<&str>)> = atoms
        .iter()
        .map(|(n, vs)| (n.as_str(), vs.iter().map(String::as_str).collect()))
        .collect();
    let slices: Vec<(&str, &[&str])> = borrowed.iter().map(|(n, vs)| (*n, vs.as_slice())).collect();
    Query::new(&slices).expect("generated queries are structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::is_hierarchical_by_elimination;
    use crate::tree::is_hierarchical_by_tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hierarchical_generator_is_sound() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let q = random_hierarchical(&mut rng, 6, 6);
            assert!(is_hierarchical(&q), "generator must be sound: {q}");
        }
    }

    #[test]
    fn non_hierarchical_generator_is_sound() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..200 {
            let q = random_non_hierarchical(&mut rng, 5, 5);
            assert!(!is_hierarchical(&q), "generator must be sound: {q}");
        }
    }

    #[test]
    fn characterisations_agree_on_random_queries() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut seen_hier = 0;
        let mut seen_non = 0;
        for _ in 0..500 {
            let q = random_query(&mut rng, 5, 5);
            let pairwise = is_hierarchical(&q);
            assert_eq!(pairwise, is_hierarchical_by_elimination(&q), "{q}");
            assert_eq!(pairwise, is_hierarchical_by_tree(&q), "{q}");
            if pairwise {
                seen_hier += 1;
            } else {
                seen_non += 1;
            }
        }
        assert!(
            seen_hier > 20,
            "sampler should produce hierarchical queries"
        );
        assert!(
            seen_non > 20,
            "sampler should produce non-hierarchical queries"
        );
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let q1 = random_hierarchical(&mut StdRng::seed_from_u64(7), 5, 5);
        let q2 = random_hierarchical(&mut StdRng::seed_from_u64(7), 5, 5);
        assert_eq!(q1, q2);
    }
}
