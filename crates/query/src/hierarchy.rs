//! The hierarchical-query test via the pairwise `at(·)` definition.
//!
//! A SJF-BCQ `Q` is *hierarchical* iff for every pair of variables
//! `X, Y`, either `at(X) ⊆ at(Y)`, `at(Y) ⊆ at(X)`, or
//! `at(X) ∩ at(Y) = ∅` (Section 1 of the paper). This module implements
//! that definition directly, and extracts the canonical witness shape
//! used by the hardness reduction of Theorem 4.4 when the test fails:
//! variables `A, B` and atoms `R ∈ at(A)\at(B)`, `S ∈ at(A)∩at(B)`,
//! `T ∈ at(B)\at(A)`.
//!
//! Two independent characterisations live elsewhere and are
//! property-tested to agree with this one: the elimination procedure of
//! Proposition 5.1 ([`crate::elimination`]) and the witness-tree
//! criterion of Proposition 5.5 ([`crate::tree`]).

use crate::ast::{Query, Var};
use std::collections::BTreeSet;

/// A certificate that a query is non-hierarchical: the `R(A,X̄)`,
/// `S(A,B,Ȳ)`, `T(B,Z̄)` sub-structure from the proof of Theorem 4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonHierarchicalWitness {
    /// Variable `A` (in `r_atom` and `s_atom` but not `t_atom`).
    pub a: Var,
    /// Variable `B` (in `s_atom` and `t_atom` but not `r_atom`).
    pub b: Var,
    /// Index of an atom containing `A` but not `B`.
    pub r_atom: usize,
    /// Index of an atom containing both `A` and `B`.
    pub s_atom: usize,
    /// Index of an atom containing `B` but not `A`.
    pub t_atom: usize,
}

/// Searches for a non-hierarchical witness; `None` means the query is
/// hierarchical.
pub fn non_hierarchical_witness(q: &Query) -> Option<NonHierarchicalWitness> {
    let at_sets: Vec<BTreeSet<usize>> = q.vars().map(|v| q.at(v).into_iter().collect()).collect();
    for a in q.vars() {
        for b in q.vars() {
            if a >= b {
                continue;
            }
            let at_a = &at_sets[a.0];
            let at_b = &at_sets[b.0];
            let inter: Vec<usize> = at_a.intersection(at_b).copied().collect();
            if inter.is_empty() || at_a.is_subset(at_b) || at_b.is_subset(at_a) {
                continue;
            }
            let r_atom = *at_a.difference(at_b).next().expect("not a subset");
            let t_atom = *at_b.difference(at_a).next().expect("not a superset");
            let s_atom = inter[0];
            return Some(NonHierarchicalWitness {
                a,
                b,
                r_atom,
                s_atom,
                t_atom,
            });
        }
    }
    None
}

/// Whether `q` is hierarchical (pairwise `at(·)` definition).
pub fn is_hierarchical(q: &Query) -> bool {
    non_hierarchical_witness(q).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{example_query, q_hierarchical, q_non_hierarchical, Query};

    #[test]
    fn paper_examples_classified() {
        assert!(is_hierarchical(&example_query()));
        assert!(is_hierarchical(&q_hierarchical()));
        assert!(!is_hierarchical(&q_non_hierarchical()));
    }

    #[test]
    fn witness_shape_is_correct() {
        let q = q_non_hierarchical(); // R(X), S(X,Y), T(Y)
        let w = non_hierarchical_witness(&q).unwrap();
        let a_atoms = q.at(w.a);
        let b_atoms = q.at(w.b);
        assert!(a_atoms.contains(&w.r_atom) && !b_atoms.contains(&w.r_atom));
        assert!(a_atoms.contains(&w.s_atom) && b_atoms.contains(&w.s_atom));
        assert!(b_atoms.contains(&w.t_atom) && !a_atoms.contains(&w.t_atom));
    }

    #[test]
    fn chain_of_length_three_not_hierarchical() {
        // Example 5.3: R(A,B), S(B,C), T(C,D) — stuck after eliminating
        // the private endpoints.
        let q = Query::new(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])]).unwrap();
        assert!(!is_hierarchical(&q));
    }

    #[test]
    fn disconnected_query_hierarchical() {
        // Example 5.4: R(A), S(B).
        let q = Query::new(&[("R", &["A"]), ("S", &["B"])]).unwrap();
        assert!(is_hierarchical(&q));
    }

    #[test]
    fn single_atom_always_hierarchical() {
        let q = Query::new(&[("R", &["A", "B", "C"])]).unwrap();
        assert!(is_hierarchical(&q));
        let q0 = Query::new(&[("R", &[])]).unwrap();
        assert!(is_hierarchical(&q0));
    }

    #[test]
    fn star_query_hierarchical() {
        // R(A,B), S(A,C), T(A,D): A dominates, leaves are private.
        let q = Query::new(&[("R", &["A", "B"]), ("S", &["A", "C"]), ("T", &["A", "D"])]).unwrap();
        assert!(is_hierarchical(&q));
    }

    #[test]
    fn two_overlapping_pairs_not_hierarchical() {
        // R(A,B), S(B,C): at(A)={R}, at(B)={R,S}, at(C)={S} — this IS
        // hierarchical. Adding T(A,C) breaks it: at(A)={R,T},
        // at(C)={S,T} overlap without containment.
        let q = Query::new(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["A", "C"])]).unwrap();
        assert!(!is_hierarchical(&q));
    }
}
