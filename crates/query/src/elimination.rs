//! The elimination procedure for hierarchical queries
//! (Proposition 5.1) compiled into an executable plan.
//!
//! * **Rule 1** eliminates a *private* variable `Y` occurring in exactly
//!   one atom `R(X̄)`, replacing it with `R'(X̄ \ {Y})` — the engine will
//!   realise this as a ⊕-aggregating projection.
//! * **Rule 2** merges two atoms `R₁(X̄)`, `R₂(X̄)` with the *same*
//!   variable set into one atom `R'(X̄)` — realised as a ⊗-join.
//!
//! The procedure reduces `Q` to a single nullary atom iff `Q` is
//! hierarchical, and any application order reaches the same conclusion;
//! we fix a deterministic order (lowest variable id for Rule 1, lowest
//! atom-index pair for Rule 2, Rule 1 preferred) so plans, traces, and
//! benchmarks are reproducible. An alternative order is available for
//! the ablation study ([`PlanOrder`]).

use crate::ast::{Atom, Query, Var};
use crate::hierarchy::{non_hierarchical_witness, NonHierarchicalWitness};
use std::collections::BTreeSet;
use std::fmt;

/// One step of the elimination plan. Atom slots are indices into the
/// original query's atom list; a [`Step::Merge`] leaves its result in
/// the `left` slot and kills the `right` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Rule 1: project variable `var` out of atom slot `atom`,
    /// aggregating annotations with ⊕.
    ProjectOut {
        /// The atom slot.
        atom: usize,
        /// The private variable being eliminated.
        var: Var,
    },
    /// Rule 2: merge atom slots `left` and `right` (equal variable
    /// sets), combining annotations with ⊗. The result lives in `left`.
    Merge {
        /// Surviving slot.
        left: usize,
        /// Slot that disappears.
        right: usize,
    },
}

/// Deterministic tie-breaking policy for plan construction — the
/// subject of the engine-ablation bench (plan order cannot change the
/// result, per Proposition 5.1, but changes intermediate sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanOrder {
    /// Prefer Rule 1; lowest variable id / lowest atom pair first.
    #[default]
    Rule1First,
    /// Prefer Rule 2 (merge eagerly); then Rule 1.
    Rule2First,
    /// Prefer Rule 1 with the *highest* variable id.
    Rule1HighVar,
}

/// A compiled elimination plan: the step sequence plus the slot holding
/// the final nullary relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationPlan {
    steps: Vec<Step>,
    root: usize,
}

impl EliminationPlan {
    /// The steps in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The atom slot holding the final nullary relation `R()`.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of Rule 1 applications (equals `|vars(Q)|` for any
    /// hierarchical query).
    pub fn rule1_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::ProjectOut { .. }))
            .count()
    }

    /// Number of Rule 2 applications (equals `|at(Q)| - 1`).
    pub fn rule2_count(&self) -> usize {
        self.steps.len() - self.rule1_count()
    }

    /// Renders the plan as a paper-style trace: the evolving query after
    /// each rule application, with primes added to relation names.
    pub fn trace(&self, q: &Query) -> String {
        let mut names: Vec<String> = q.atoms().iter().map(|a| a.rel.clone()).collect();
        let mut var_sets: Vec<Option<BTreeSet<Var>>> =
            q.atoms().iter().map(|a| Some(a.var_set())).collect();
        let render = |names: &[String], var_sets: &[Option<BTreeSet<Var>>]| {
            let atoms: Vec<String> = var_sets
                .iter()
                .enumerate()
                .filter_map(|(i, vs)| {
                    vs.as_ref().map(|vs| {
                        let vars: Vec<&str> = vs.iter().map(|&v| q.var_name(v)).collect();
                        format!("{}({})", names[i], vars.join(", "))
                    })
                })
                .collect();
            format!("Q() :- {}", atoms.join(" ∧ "))
        };
        let mut out = String::new();
        out.push_str(&render(&names, &var_sets));
        for step in &self.steps {
            match *step {
                Step::ProjectOut { atom, var } => {
                    let vs = var_sets[atom].as_mut().expect("alive slot");
                    vs.remove(&var);
                    names[atom].push('\'');
                    out.push_str(&format!(
                        "\n  (Rule 1: eliminate {})\n{}",
                        q.var_name(var),
                        render(&names, &var_sets)
                    ));
                }
                Step::Merge { left, right } => {
                    let right_name = names[right].clone();
                    var_sets[right] = None;
                    names[left] = format!("[{}⊗{}]", names[left], right_name);
                    out.push_str(&format!(
                        "\n  (Rule 2: merge)\n{}",
                        render(&names, &var_sets)
                    ));
                }
            }
        }
        out
    }
}

impl fmt::Display for EliminationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            match s {
                Step::ProjectOut { atom, var } => {
                    write!(f, "{i}: project var v{} out of slot {atom}", var.0)?
                }
                Step::Merge { left, right } => {
                    write!(f, "{i}: merge slot {right} into slot {left}")?
                }
            }
        }
        Ok(())
    }
}

/// Planning failure: the query is not hierarchical, with the
/// Theorem 4.4 witness attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotHierarchical {
    /// The certificate found by the pairwise test.
    pub witness: NonHierarchicalWitness,
}

impl fmt::Display for NotHierarchical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query is not hierarchical (witness vars v{}, v{})",
            self.witness.a.0, self.witness.b.0
        )
    }
}

impl std::error::Error for NotHierarchical {}

/// Compiles the elimination plan for `q` under the given order policy.
///
/// # Errors
/// Returns [`NotHierarchical`] (with a witness) iff `q` is not
/// hierarchical — Proposition 5.1 guarantees the procedure gets stuck
/// exactly then.
pub fn plan_with_order(q: &Query, order: PlanOrder) -> Result<EliminationPlan, NotHierarchical> {
    let mut var_sets: Vec<Option<BTreeSet<Var>>> =
        q.atoms().iter().map(|a| Some(a.var_set())).collect();
    let mut steps = Vec::new();
    loop {
        let alive: Vec<usize> = (0..var_sets.len())
            .filter(|&i| var_sets[i].is_some())
            .collect();
        // Done: a single nullary atom.
        if alive.len() == 1 && var_sets[alive[0]].as_ref().expect("alive").is_empty() {
            return Ok(EliminationPlan {
                steps,
                root: alive[0],
            });
        }
        let rule1 = find_rule1(q, &var_sets, &alive, order);
        let rule2 = find_rule2(&var_sets, &alive);
        let chosen = match order {
            PlanOrder::Rule1First | PlanOrder::Rule1HighVar => {
                rule1.map(StepChoice::R1).or(rule2.map(StepChoice::R2))
            }
            PlanOrder::Rule2First => rule2.map(StepChoice::R2).or(rule1.map(StepChoice::R1)),
        };
        match chosen {
            Some(StepChoice::R1((atom, var))) => {
                var_sets[atom].as_mut().expect("alive").remove(&var);
                steps.push(Step::ProjectOut { atom, var });
            }
            Some(StepChoice::R2((left, right))) => {
                var_sets[right] = None;
                steps.push(Step::Merge { left, right });
            }
            None => {
                let witness = non_hierarchical_witness(q)
                    .expect("elimination stuck implies non-hierarchical (Prop. 5.1)");
                return Err(NotHierarchical { witness });
            }
        }
    }
}

enum StepChoice {
    R1((usize, Var)),
    R2((usize, usize)),
}

fn find_rule1(
    q: &Query,
    var_sets: &[Option<BTreeSet<Var>>],
    alive: &[usize],
    order: PlanOrder,
) -> Option<(usize, Var)> {
    let mut candidates: Vec<(usize, Var)> = Vec::new();
    for v in q.vars() {
        let occurrences: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|&i| var_sets[i].as_ref().expect("alive").contains(&v))
            .collect();
        if occurrences.len() == 1 {
            candidates.push((occurrences[0], v));
        }
    }
    match order {
        PlanOrder::Rule1HighVar => candidates.into_iter().max_by_key(|&(_, v)| v),
        _ => candidates.into_iter().min_by_key(|&(_, v)| v),
    }
}

fn find_rule2(var_sets: &[Option<BTreeSet<Var>>], alive: &[usize]) -> Option<(usize, usize)> {
    for (i, &a) in alive.iter().enumerate() {
        for &b in &alive[i + 1..] {
            if var_sets[a] == var_sets[b] {
                return Some((a, b));
            }
        }
    }
    None
}

/// Compiles the elimination plan with the default deterministic order.
///
/// # Errors
/// Returns [`NotHierarchical`] iff `q` is not hierarchical.
pub fn plan(q: &Query) -> Result<EliminationPlan, NotHierarchical> {
    plan_with_order(q, PlanOrder::default())
}

/// Hierarchy test via the elimination procedure (Proposition 5.1). The
/// property-test suite checks this agrees with the pairwise `at(·)`
/// definition on random queries.
pub fn is_hierarchical_by_elimination(q: &Query) -> bool {
    plan(q).is_ok()
}

/// Replays the plan symbolically and returns the variable set of every
/// intermediate atom — used by tests and by the engine to size its
/// annotated relations.
pub fn replay_var_sets(q: &Query, p: &EliminationPlan) -> Vec<Vec<Option<Vec<Var>>>> {
    let mut var_sets: Vec<Option<BTreeSet<Var>>> =
        q.atoms().iter().map(|a| Some(a.var_set())).collect();
    let snapshot = |vs: &[Option<BTreeSet<Var>>]| {
        vs.iter()
            .map(|o| o.as_ref().map(|s| s.iter().copied().collect()))
            .collect::<Vec<Option<Vec<Var>>>>()
    };
    let mut out = vec![snapshot(&var_sets)];
    for step in p.steps() {
        match *step {
            Step::ProjectOut { atom, var } => {
                var_sets[atom].as_mut().expect("alive").remove(&var);
            }
            Step::Merge { left: _, right } => {
                var_sets[right] = None;
            }
        }
        out.push(snapshot(&var_sets));
    }
    out
}

/// Convenience: returns the atoms of `q` as `(slot, Atom)` pairs — the
/// engine seeds its annotated-relation slots from this.
pub fn initial_slots(q: &Query) -> Vec<(usize, &Atom)> {
    q.atoms().iter().enumerate().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{example_query, q_hierarchical, q_non_hierarchical, Query};

    #[test]
    fn example_52_plan_shape() {
        // Q() :- R(A,B), S(A,C), T(A,C,D): 4 vars, 3 atoms →
        // 4 Rule-1 steps + 2 Rule-2 steps, exactly as in Example 5.2.
        let q = example_query();
        let p = plan(&q).unwrap();
        assert_eq!(p.rule1_count(), 4);
        assert_eq!(p.rule2_count(), 2);
        assert_eq!(p.steps().len(), 6);
    }

    #[test]
    fn example_53_gets_stuck() {
        // Q() :- R(A,B), S(B,C), T(C,D) is not hierarchical.
        let q = Query::new(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])]).unwrap();
        let e = plan(&q).unwrap_err();
        // The witness must involve B and C (the only overlapping pair).
        let (a, b) = (e.witness.a, e.witness.b);
        assert_eq!([q.var_name(a), q.var_name(b)], ["B", "C"]);
    }

    #[test]
    fn example_54_disconnected_reduces_to_one_atom() {
        // Q() :- R(A), S(B): 2 Rule-1 + 1 Rule-2.
        let q = Query::new(&[("R", &["A"]), ("S", &["B"])]).unwrap();
        let p = plan(&q).unwrap();
        assert_eq!(p.rule1_count(), 2);
        assert_eq!(p.rule2_count(), 1);
    }

    #[test]
    fn q_h_plan_matches_eqs_4_to_9() {
        // Q_h() :- E(X,Y), F(Y,Z) reduces with 3 Rule-1 + 1 Rule-2.
        let p = plan(&q_hierarchical()).unwrap();
        assert_eq!(p.rule1_count(), 3);
        assert_eq!(p.rule2_count(), 1);
    }

    #[test]
    fn step_counts_invariant_across_orders() {
        let q = example_query();
        for order in [
            PlanOrder::Rule1First,
            PlanOrder::Rule2First,
            PlanOrder::Rule1HighVar,
        ] {
            let p = plan_with_order(&q, order).unwrap();
            assert_eq!(p.rule1_count(), q.var_count(), "{order:?}");
            assert_eq!(p.rule2_count(), q.atom_count() - 1, "{order:?}");
        }
    }

    #[test]
    fn all_orders_agree_on_classification() {
        for q in [example_query(), q_hierarchical(), q_non_hierarchical()] {
            let verdicts: Vec<bool> = [
                PlanOrder::Rule1First,
                PlanOrder::Rule2First,
                PlanOrder::Rule1HighVar,
            ]
            .iter()
            .map(|&o| plan_with_order(&q, o).is_ok())
            .collect();
            assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{q}");
        }
    }

    #[test]
    fn nullary_only_query() {
        let q = Query::new(&[("R", &[])]).unwrap();
        let p = plan(&q).unwrap();
        assert!(p.steps().is_empty());
        assert_eq!(p.root(), 0);
    }

    #[test]
    fn two_nullary_atoms_merge() {
        let q = Query::new(&[("R", &[]), ("S", &[])]).unwrap();
        let p = plan(&q).unwrap();
        assert_eq!(p.steps(), &[Step::Merge { left: 0, right: 1 }]);
    }

    #[test]
    fn trace_renders_rules() {
        let q = example_query();
        let p = plan(&q).unwrap();
        let trace = p.trace(&q);
        assert!(trace.contains("Rule 1"));
        assert!(trace.contains("Rule 2"));
        assert!(trace.lines().next().unwrap().contains("R(A, B)"));
    }

    #[test]
    fn replay_ends_with_single_empty_slot() {
        let q = example_query();
        let p = plan(&q).unwrap();
        let states = replay_var_sets(&q, &p);
        let last = states.last().unwrap();
        let alive: Vec<_> = last.iter().flatten().collect();
        assert_eq!(alive.len(), 1);
        assert!(alive[0].is_empty());
    }

    #[test]
    fn matches_pairwise_definition_on_examples() {
        use crate::hierarchy::is_hierarchical;
        for q in [
            example_query(),
            q_hierarchical(),
            q_non_hierarchical(),
            Query::new(&[("R", &["A"]), ("S", &["B"])]).unwrap(),
            Query::new(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])]).unwrap(),
        ] {
            assert_eq!(
                is_hierarchical(&q),
                is_hierarchical_by_elimination(&q),
                "{q}"
            );
        }
    }
}
