//! Self-join-free Boolean conjunctive queries (SJF-BCQ).
//!
//! A query `Q() :- R₁(X̄₁) ∧ … ∧ R_m(X̄_m)` (Eq. (12) of the paper) with
//! all existential quantifiers suppressed. Two structural constraints
//! are enforced at construction time:
//!
//! * **self-join-freeness** — no two atoms share a relation symbol;
//! * **set-shaped atoms** — an atom's arguments are a *set* of
//!   variables (no repeats), matching the paper's `R(X̄)` notation.

use hq_db::{Interner, Pattern, PatternAtom};
use std::collections::BTreeSet;
use std::fmt;

/// A query variable, identified by its index into [`Query::var_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub usize);

/// One atom `R(X̄)` of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation name (unique per query: self-join-free).
    pub rel: String,
    /// The argument variables, in written order, all distinct.
    pub vars: Vec<Var>,
}

impl Atom {
    /// The variable set `X̄` of the atom.
    pub fn var_set(&self) -> BTreeSet<Var> {
        self.vars.iter().copied().collect()
    }

    /// The atom's **key schema**: its variables in ascending id order
    /// plus, for each key column `j`, the written-order column
    /// `positions[j]` it comes from. Every layer that keys relation
    /// rows in ascending variable order (annotation, the encoded
    /// cache, plan-IR lowering, the incremental fact index) derives
    /// its permutation from this one definition — the structural
    /// identity of shared plan nodes depends on these copies agreeing.
    pub fn key_schema(&self) -> (Vec<Var>, Vec<usize>) {
        let mut sorted = self.vars.clone();
        sorted.sort_unstable();
        let positions = sorted
            .iter()
            .map(|v| {
                self.vars
                    .iter()
                    .position(|w| w == v)
                    .expect("sorted vars come from the atom")
            })
            .collect();
        (sorted, positions)
    }

    /// [`Atom::key_schema`]'s permutation as the layers' common
    /// `Option` convention: `None` when the written order already is
    /// the key order (the common case — callers skip re-keying).
    pub fn key_positions(&self) -> (Vec<Var>, Option<Vec<usize>>) {
        let (sorted, positions) = self.key_schema();
        let identity = positions.iter().enumerate().all(|(a, &b)| a == b);
        (sorted, if identity { None } else { Some(positions) })
    }
}

/// Errors rejected by [`Query::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Two atoms use the same relation symbol (a self-join).
    SelfJoin {
        /// The repeated relation name.
        rel: String,
    },
    /// An atom repeats a variable.
    RepeatedVariable {
        /// The relation name of the offending atom.
        rel: String,
        /// The repeated variable name.
        var: String,
    },
    /// The query has no atoms.
    Empty,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::SelfJoin { rel } => {
                write!(f, "self-join: relation '{rel}' appears in two atoms")
            }
            QueryError::RepeatedVariable { rel, var } => {
                write!(f, "atom '{rel}' repeats variable '{var}'")
            }
            QueryError::Empty => write!(f, "query has no atoms"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A validated SJF-BCQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    atoms: Vec<Atom>,
    var_names: Vec<String>,
}

impl Query {
    /// Builds and validates a query from atoms given as
    /// `(relation name, variable names)` pairs. Variable identity is by
    /// name across atoms.
    ///
    /// # Errors
    /// Returns a [`QueryError`] for self-joins, repeated variables
    /// within an atom, or an empty atom list.
    pub fn new(atoms: &[(&str, &[&str])]) -> Result<Query, QueryError> {
        if atoms.is_empty() {
            return Err(QueryError::Empty);
        }
        let mut var_names: Vec<String> = Vec::new();
        let mut rels: BTreeSet<String> = BTreeSet::new();
        let mut out_atoms = Vec::with_capacity(atoms.len());
        for (rel, vars) in atoms {
            if !rels.insert((*rel).to_owned()) {
                return Err(QueryError::SelfJoin {
                    rel: (*rel).to_owned(),
                });
            }
            let mut seen = BTreeSet::new();
            let mut atom_vars = Vec::with_capacity(vars.len());
            for v in *vars {
                if !seen.insert(*v) {
                    return Err(QueryError::RepeatedVariable {
                        rel: (*rel).to_owned(),
                        var: (*v).to_owned(),
                    });
                }
                let idx = match var_names.iter().position(|n| n == v) {
                    Some(i) => i,
                    None => {
                        var_names.push((*v).to_owned());
                        var_names.len() - 1
                    }
                };
                atom_vars.push(Var(idx));
            }
            out_atoms.push(Atom {
                rel: (*rel).to_owned(),
                vars: atom_vars,
            });
        }
        Ok(Query {
            atoms: out_atoms,
            var_names,
        })
    }

    /// The atoms in written order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of distinct variables, `|vars(Q)|`.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// All variables of the query.
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        (0..self.var_names.len()).map(Var)
    }

    /// The name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0]
    }

    /// `at(Y)`: the indices of atoms containing variable `v`.
    pub fn at(&self, v: Var) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.vars.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Compiles the query body into a database-layer join
    /// [`Pattern`], interning relation names.
    pub fn to_pattern(&self, interner: &mut Interner) -> Pattern {
        Pattern {
            atoms: self
                .atoms
                .iter()
                .map(|a| PatternAtom {
                    rel: interner.intern(&a.rel),
                    vars: a.vars.iter().map(|v| v.0).collect(),
                })
                .collect(),
            var_count: self.var_names.len(),
        }
    }

    /// Connected components of the atom graph (atoms adjacent iff they
    /// share a variable). Returns atom-index groups; singleton nullary
    /// atoms each form their own component.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.atoms.len();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = count;
            count += 1;
            let mut stack = vec![start];
            comp[start] = id;
            while let Some(i) = stack.pop() {
                let vars_i = self.atoms[i].var_set();
                for (j, slot) in comp.iter_mut().enumerate() {
                    if *slot == usize::MAX && self.atoms[j].vars.iter().any(|v| vars_i.contains(v))
                    {
                        *slot = id;
                        stack.push(j);
                    }
                }
            }
        }
        let mut groups = vec![Vec::new(); count];
        for (i, &c) in comp.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q() :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.rel)?;
            for (j, v) in a.vars.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.var_names[v.0])?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The paper's running example (Eq. (1)):
/// `Q() :- R(A,B), S(A,C), T(A,C,D)`.
pub fn example_query() -> Query {
    Query::new(&[
        ("R", &["A", "B"]),
        ("S", &["A", "C"]),
        ("T", &["A", "C", "D"]),
    ])
    .expect("example query is well-formed")
}

/// The canonical hierarchical query `Q_h() :- E(X,Y), F(Y,Z)`.
pub fn q_hierarchical() -> Query {
    Query::new(&[("E", &["X", "Y"]), ("F", &["Y", "Z"])]).expect("well-formed")
}

/// The canonical non-hierarchical query
/// `Q_nh() :- R(X), S(X,Y), T(Y)` (hard for all three problems).
pub fn q_non_hierarchical() -> Query {
    Query::new(&[("R", &["X"]), ("S", &["X", "Y"]), ("T", &["Y"])]).expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let q = example_query();
        assert_eq!(q.atom_count(), 3);
        assert_eq!(q.var_count(), 4);
        assert_eq!(q.var_name(Var(0)), "A");
        assert_eq!(q.var_name(Var(3)), "D");
        assert_eq!(q.to_string(), "Q() :- R(A, B), S(A, C), T(A, C, D)");
    }

    #[test]
    fn at_sets_match_definition() {
        let q = example_query();
        // A occurs in all three atoms; B only in R; C in S and T; D in T.
        assert_eq!(q.at(Var(0)), vec![0, 1, 2]);
        assert_eq!(q.at(Var(1)), vec![0]);
        assert_eq!(q.at(Var(2)), vec![1, 2]);
        assert_eq!(q.at(Var(3)), vec![2]);
    }

    #[test]
    fn rejects_self_joins() {
        let e = Query::new(&[("R", &["X"]), ("R", &["Y"])]).unwrap_err();
        assert_eq!(e, QueryError::SelfJoin { rel: "R".into() });
    }

    #[test]
    fn rejects_repeated_vars_in_atom() {
        let e = Query::new(&[("R", &["X", "X"])]).unwrap_err();
        assert!(matches!(e, QueryError::RepeatedVariable { .. }));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Query::new(&[]).unwrap_err(), QueryError::Empty);
    }

    #[test]
    fn nullary_atoms_allowed() {
        let q = Query::new(&[("R", &[])]).unwrap();
        assert_eq!(q.var_count(), 0);
        assert_eq!(q.to_string(), "Q() :- R()");
    }

    #[test]
    fn to_pattern_preserves_shape() {
        let mut i = Interner::new();
        let q = q_hierarchical();
        let p = q.to_pattern(&mut i);
        assert_eq!(p.var_count, 3);
        assert_eq!(p.atoms.len(), 2);
        assert_eq!(p.atoms[0].vars, vec![0, 1]);
        assert_eq!(p.atoms[1].vars, vec![1, 2]);
    }

    #[test]
    fn connected_components_split() {
        let q = Query::new(&[("R", &["A"]), ("S", &["B"]), ("T", &["A", "C"])]).unwrap();
        let comps = q.connected_components();
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![0, 2]));
        assert!(comps.contains(&vec![1]));
    }

    #[test]
    fn connected_components_connected_query() {
        let q = example_query();
        assert_eq!(q.connected_components(), vec![vec![0, 1, 2]]);
    }
}
