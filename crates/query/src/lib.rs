//! # hq-query — self-join-free Boolean conjunctive queries
//!
//! Query representation, parsing, and the structural theory of
//! *hierarchical* queries from *A Unifying Algorithm for Hierarchical
//! Queries* (PODS 2025): the pairwise `at(·)` definition, the
//! elimination procedure of Proposition 5.1 (compiled into executable
//! [`EliminationPlan`]s that the unifying algorithm replays over
//! annotated databases), and the witness trees of Proposition 5.5.
//!
//! The three hierarchy characterisations are implemented independently
//! and property-tested to agree — a strong check on each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod elimination;
pub mod gen;
pub mod hierarchy;
pub mod parser;
pub mod tree;

pub use ast::{example_query, q_hierarchical, q_non_hierarchical, Atom, Query, QueryError, Var};
pub use elimination::{plan, plan_with_order, EliminationPlan, NotHierarchical, PlanOrder, Step};
pub use hierarchy::{is_hierarchical, non_hierarchical_witness, NonHierarchicalWitness};
pub use parser::{parse_query, ParseQueryError};
pub use tree::{witness_forest, HierarchyForest};
