//! Witness trees for hierarchical queries (Proposition 5.5).
//!
//! A *connected* SJF-BCQ `Q` is hierarchical iff there is a rooted tree
//! on `vars(Q)` such that every atom's variable set is exactly the set
//! of variables on some node-to-root path. This module constructs such
//! a tree (a forest, one tree per connected component) and verifies the
//! path property — giving a third, independently checkable
//! characterisation of hierarchy next to the pairwise `at(·)` test and
//! the elimination procedure.

use crate::ast::{Query, Var};
use std::collections::BTreeSet;

/// A forest over the query's variables: `parent[v]` is the parent of
/// variable `v`, or `None` if `v` is a root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyForest {
    parent: Vec<Option<Var>>,
    roots: Vec<Var>,
}

impl HierarchyForest {
    /// The parent of `v` (`None` for roots).
    pub fn parent(&self, v: Var) -> Option<Var> {
        self.parent[v.0]
    }

    /// The component roots.
    pub fn roots(&self) -> &[Var] {
        &self.roots
    }

    /// The set of variables on the path from `v` to its root,
    /// inclusive.
    pub fn path_to_root(&self, v: Var) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        let mut cur = Some(v);
        while let Some(c) = cur {
            out.insert(c);
            cur = self.parent[c.0];
        }
        out
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: Var) -> usize {
        let mut d = 0;
        let mut cur = self.parent[v.0];
        while let Some(c) = cur {
            d += 1;
            cur = self.parent[c.0];
        }
        d
    }
}

/// Attempts to build a witness forest; `None` iff the query is not
/// hierarchical (per Proposition 5.5, extended to forests for
/// disconnected queries).
pub fn witness_forest(q: &Query) -> Option<HierarchyForest> {
    let mut parent: Vec<Option<Var>> = vec![None; q.var_count()];
    let mut roots = Vec::new();
    for comp in q.connected_components() {
        // Variables in scope for this component.
        let vars: BTreeSet<Var> = comp
            .iter()
            .flat_map(|&i| q.atoms()[i].vars.iter().copied())
            .collect();
        if vars.is_empty() {
            continue; // purely nullary component: nothing to place
        }
        let root = build_component(q, &comp, &vars, None, &mut parent)?;
        roots.push(root);
    }
    Some(HierarchyForest { parent, roots })
}

/// Recursively builds the tree for the atoms `comp` restricted to the
/// in-scope variables `scope`, hanging the subtree under `attach`.
/// Returns the topmost variable placed.
fn build_component(
    q: &Query,
    comp: &[usize],
    scope: &BTreeSet<Var>,
    attach: Option<Var>,
    parent: &mut Vec<Option<Var>>,
) -> Option<Var> {
    // Universal variables: in-scope vars occurring in *every* atom of
    // the component. A connected hierarchical component must have one.
    let universal: Vec<Var> = scope
        .iter()
        .copied()
        .filter(|&v| comp.iter().all(|&i| q.atoms()[i].vars.contains(&v)))
        .collect();
    if universal.is_empty() {
        return None; // stuck: not hierarchical
    }
    // Chain the universal variables (order within the chain is
    // irrelevant: every atom contains all of them).
    let mut above = attach;
    for &u in &universal {
        parent[u.0] = above;
        above = Some(u);
    }
    let deepest = *universal.last().expect("non-empty");
    // Remove them from scope; atoms whose remaining var set is empty
    // drop out; the rest splits into sub-components.
    let remaining: BTreeSet<Var> = scope
        .iter()
        .copied()
        .filter(|v| !universal.contains(v))
        .collect();
    let live_atoms: Vec<usize> = comp
        .iter()
        .copied()
        .filter(|&i| q.atoms()[i].vars.iter().any(|v| remaining.contains(v)))
        .collect();
    for sub in sub_components(q, &live_atoms, &remaining) {
        let sub_scope: BTreeSet<Var> = sub
            .iter()
            .flat_map(|&i| q.atoms()[i].vars.iter().copied())
            .filter(|v| remaining.contains(v))
            .collect();
        build_component(q, &sub, &sub_scope, Some(deepest), parent)?;
    }
    Some(universal[0])
}

/// Connected components of `atoms` where adjacency is sharing an
/// *in-scope* variable.
fn sub_components(q: &Query, atoms: &[usize], scope: &BTreeSet<Var>) -> Vec<Vec<usize>> {
    let mut assigned: Vec<bool> = vec![false; atoms.len()];
    let scoped_vars = |i: usize| -> BTreeSet<Var> {
        q.atoms()[atoms[i]]
            .vars
            .iter()
            .copied()
            .filter(|v| scope.contains(v))
            .collect()
    };
    let mut out = Vec::new();
    for start in 0..atoms.len() {
        if assigned[start] {
            continue;
        }
        let mut group = vec![atoms[start]];
        assigned[start] = true;
        let mut frontier = vec![start];
        while let Some(i) = frontier.pop() {
            let vi = scoped_vars(i);
            for j in 0..atoms.len() {
                if !assigned[j] && scoped_vars(j).intersection(&vi).next().is_some() {
                    assigned[j] = true;
                    group.push(atoms[j]);
                    frontier.push(j);
                }
            }
        }
        out.push(group);
    }
    out
}

/// Checks the Proposition 5.5 property: every atom's variable set is
/// exactly some node-to-root path in the forest.
pub fn verify_forest(q: &Query, forest: &HierarchyForest) -> bool {
    q.atoms().iter().all(|atom| {
        let vs = atom.var_set();
        if vs.is_empty() {
            return true; // nullary atoms carry no path constraint
        }
        vs.iter().any(|&y| forest.path_to_root(y) == vs)
    })
}

/// Hierarchy test via witness-tree existence — the third
/// characterisation, cross-checked against the other two by property
/// tests.
pub fn is_hierarchical_by_tree(q: &Query) -> bool {
    match witness_forest(q) {
        Some(f) => {
            debug_assert!(verify_forest(q, &f), "constructed forest must verify");
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{example_query, q_hierarchical, q_non_hierarchical, Query};

    #[test]
    fn example_query_tree() {
        let q = example_query(); // R(A,B), S(A,C), T(A,C,D)
        let f = witness_forest(&q).unwrap();
        assert!(verify_forest(&q, &f));
        // A must be the root (it is the only variable in all atoms).
        assert_eq!(f.roots(), &[Var(0)]);
        assert_eq!(f.parent(Var(0)), None);
        // B hangs off A; C off A; D off C.
        assert_eq!(f.parent(Var(1)), Some(Var(0)));
        assert_eq!(f.parent(Var(2)), Some(Var(0)));
        assert_eq!(f.parent(Var(3)), Some(Var(2)));
    }

    #[test]
    fn q_h_tree() {
        let q = q_hierarchical(); // E(X,Y), F(Y,Z)
        let f = witness_forest(&q).unwrap();
        assert!(verify_forest(&q, &f));
        // Y is universal → root; X and Z are leaves under Y.
        assert_eq!(f.roots().len(), 1);
        let root = f.roots()[0];
        assert_eq!(q.var_name(root), "Y");
    }

    #[test]
    fn non_hierarchical_has_no_tree() {
        assert!(witness_forest(&q_non_hierarchical()).is_none());
        let chain =
            Query::new(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])]).unwrap();
        assert!(witness_forest(&chain).is_none());
    }

    #[test]
    fn disconnected_query_gets_forest() {
        let q = Query::new(&[("R", &["A"]), ("S", &["B"])]).unwrap();
        let f = witness_forest(&q).unwrap();
        assert_eq!(f.roots().len(), 2);
        assert!(verify_forest(&q, &f));
    }

    #[test]
    fn chained_universal_vars() {
        // R(A,B), S(A,B): both vars universal — must be chained so the
        // single path {A,B} covers both atoms.
        let q = Query::new(&[("R", &["A", "B"]), ("S", &["A", "B"])]).unwrap();
        let f = witness_forest(&q).unwrap();
        assert!(verify_forest(&q, &f));
        assert_eq!(f.roots().len(), 1);
        let depths: Vec<usize> = q.vars().map(|v| f.depth(v)).collect();
        let mut sorted = depths.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn path_to_root_is_inclusive() {
        let q = example_query();
        let f = witness_forest(&q).unwrap();
        let path = f.path_to_root(Var(3)); // D → C → A
        let expected: BTreeSet<Var> = [Var(0), Var(2), Var(3)].into_iter().collect();
        assert_eq!(path, expected);
    }

    #[test]
    fn three_characterisations_agree_on_examples() {
        use crate::elimination::is_hierarchical_by_elimination;
        use crate::hierarchy::is_hierarchical;
        let queries = [
            example_query(),
            q_hierarchical(),
            q_non_hierarchical(),
            Query::new(&[("R", &["A"]), ("S", &["B"])]).unwrap(),
            Query::new(&[("R", &["A", "B"]), ("S", &["A", "B"])]).unwrap(),
            Query::new(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["A", "C"])]).unwrap(),
        ];
        for q in queries {
            let pairwise = is_hierarchical(&q);
            assert_eq!(pairwise, is_hierarchical_by_elimination(&q), "{q}");
            assert_eq!(pairwise, is_hierarchical_by_tree(&q), "{q}");
        }
    }
}
