//! A hand-rolled parser for the textual query syntax.
//!
//! Accepted forms (whitespace-insensitive, optional trailing `.`):
//!
//! ```text
//! Q() :- R(A, B), S(A, C), T(A, C, D)
//! R(A, B), S(A, C)                     # headless body
//! Q() :- R(A, B) ∧ S(A, C)             # ∧ as a separator
//! ```
//!
//! Identifiers are `[A-Za-z_][A-Za-z0-9_']*`; the primes let query
//! traces like `R''(A)` round-trip.

use crate::ast::{Query, QueryError};
use std::fmt;

/// A parse or validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseQueryError {
    /// Lexical/syntactic failure at a byte offset.
    Syntax {
        /// Byte offset into the input.
        offset: usize,
        /// Description of what was expected.
        message: String,
    },
    /// The parsed query violated SJF-BCQ constraints.
    Invalid(QueryError),
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseQueryError::Syntax { offset, message } => {
                write!(f, "syntax error at offset {offset}: {message}")
            }
            ParseQueryError::Invalid(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for ParseQueryError {}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok<'a> {
    Ident(&'a str),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Dot,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.src[self.pos..].chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<Tok<'a>, ParseQueryError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let Some(c) = rest.chars().next() else {
            return Ok(Tok::Eof);
        };
        let tok = match c {
            '(' => {
                self.pos += 1;
                Tok::LParen
            }
            ')' => {
                self.pos += 1;
                Tok::RParen
            }
            ',' => {
                self.pos += 1;
                Tok::Comma
            }
            '∧' => {
                self.pos += c.len_utf8();
                Tok::Comma
            }
            '.' => {
                self.pos += 1;
                Tok::Dot
            }
            ':' => {
                if rest.starts_with(":-") {
                    self.pos += 2;
                    Tok::Turnstile
                } else {
                    return Err(ParseQueryError::Syntax {
                        offset: self.pos,
                        message: "expected ':-'".into(),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let len = rest
                    .char_indices()
                    .find(|&(_, ch)| !(ch.is_ascii_alphanumeric() || ch == '_' || ch == '\''))
                    .map_or(rest.len(), |(i, _)| i);
                let ident = &rest[..len];
                self.pos += len;
                Tok::Ident(ident)
            }
            other => {
                return Err(ParseQueryError::Syntax {
                    offset: self.pos,
                    message: format!("unexpected character '{other}'"),
                })
            }
        };
        Ok(tok)
    }

    fn peek(&mut self) -> Result<Tok<'a>, ParseQueryError> {
        let save = self.pos;
        let t = self.next();
        self.pos = save;
        t
    }

    fn expect(&mut self, want: Tok<'_>) -> Result<(), ParseQueryError> {
        let offset = self.pos;
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(ParseQueryError::Syntax {
                offset,
                message: format!("expected {want:?}, found {got:?}"),
            })
        }
    }
}

/// Parses one atom `Name(v1, …, vk)`; returns `(name, vars)`.
fn parse_atom<'a>(lex: &mut Lexer<'a>) -> Result<(&'a str, Vec<&'a str>), ParseQueryError> {
    let offset = lex.pos;
    let name = match lex.next()? {
        Tok::Ident(n) => n,
        other => {
            return Err(ParseQueryError::Syntax {
                offset,
                message: format!("expected relation name, found {other:?}"),
            })
        }
    };
    lex.expect(Tok::LParen)?;
    let mut vars = Vec::new();
    if lex.peek()? == Tok::RParen {
        lex.next()?;
        return Ok((name, vars));
    }
    loop {
        let offset = lex.pos;
        match lex.next()? {
            Tok::Ident(v) => vars.push(v),
            other => {
                return Err(ParseQueryError::Syntax {
                    offset,
                    message: format!("expected variable, found {other:?}"),
                })
            }
        }
        match lex.next()? {
            Tok::Comma => continue,
            Tok::RParen => break,
            other => {
                return Err(ParseQueryError::Syntax {
                    offset: lex.pos,
                    message: format!("expected ',' or ')', found {other:?}"),
                })
            }
        }
    }
    Ok((name, vars))
}

/// Parses a query in any of the accepted forms.
///
/// # Errors
/// Returns [`ParseQueryError`] on malformed syntax or SJF-BCQ violations.
pub fn parse_query(src: &str) -> Result<Query, ParseQueryError> {
    let mut lex = Lexer::new(src);
    // Optional head "Name() :-".
    let save = lex.pos;
    let mut has_head = false;
    if let (Ok(Tok::Ident(_)),) = (lex.next(),) {
        if lex.next() == Ok(Tok::LParen)
            && lex.next() == Ok(Tok::RParen)
            && lex.peek()? == Tok::Turnstile
        {
            lex.next()?;
            has_head = true;
        }
    }
    if !has_head {
        lex.pos = save;
    }
    let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
    loop {
        let (name, vars) = parse_atom(&mut lex)?;
        atoms.push((
            name.to_owned(),
            vars.into_iter().map(str::to_owned).collect(),
        ));
        match lex.next()? {
            Tok::Comma => continue,
            Tok::Dot | Tok::Eof => break,
            other => {
                return Err(ParseQueryError::Syntax {
                    offset: lex.pos,
                    message: format!("expected ',' or end of query, found {other:?}"),
                })
            }
        }
    }
    let borrowed: Vec<(&str, Vec<&str>)> = atoms
        .iter()
        .map(|(n, vs)| (n.as_str(), vs.iter().map(String::as_str).collect()))
        .collect();
    let slices: Vec<(&str, &[&str])> = borrowed.iter().map(|(n, vs)| (*n, vs.as_slice())).collect();
    Query::new(&slices).map_err(ParseQueryError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::example_query;

    #[test]
    fn parses_with_head() {
        let q = parse_query("Q() :- R(A, B), S(A, C), T(A, C, D)").unwrap();
        assert_eq!(q, example_query());
    }

    #[test]
    fn parses_headless() {
        let q = parse_query("R(A,B), S(A,C), T(A,C,D).").unwrap();
        assert_eq!(q, example_query());
    }

    #[test]
    fn parses_wedge_separator() {
        let q = parse_query("Q() :- E(X, Y) ∧ F(Y, Z)").unwrap();
        assert_eq!(q.to_string(), "Q() :- E(X, Y), F(Y, Z)");
    }

    #[test]
    fn parses_nullary_atom() {
        let q = parse_query("Q() :- R()").unwrap();
        assert_eq!(q.atom_count(), 1);
        assert_eq!(q.var_count(), 0);
    }

    #[test]
    fn parses_primed_identifiers() {
        let q = parse_query("R''(A), S'(A, B)").unwrap();
        assert_eq!(q.to_string(), "Q() :- R''(A), S'(A, B)");
    }

    #[test]
    fn reports_syntax_errors() {
        assert!(matches!(
            parse_query("R(A,,B)"),
            Err(ParseQueryError::Syntax { .. })
        ));
        assert!(matches!(
            parse_query("R(A"),
            Err(ParseQueryError::Syntax { .. })
        ));
        assert!(matches!(
            parse_query("Q() : R(A)"),
            Err(ParseQueryError::Syntax { .. })
        ));
        assert!(matches!(
            parse_query(""),
            Err(ParseQueryError::Syntax { .. })
        ));
    }

    #[test]
    fn reports_validation_errors() {
        assert!(matches!(
            parse_query("R(A), R(B)"),
            Err(ParseQueryError::Invalid(QueryError::SelfJoin { .. }))
        ));
        assert!(matches!(
            parse_query("R(A, A)"),
            Err(ParseQueryError::Invalid(
                QueryError::RepeatedVariable { .. }
            ))
        ));
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "Q() :- R(A, B), S(A, C), T(A, C, D)",
            "Q() :- E(X, Y), F(Y, Z)",
            "Q() :- R(X), S(X, Y), T(Y)",
            "Q() :- A(X), B(Y)",
        ] {
            let q = parse_query(src).unwrap();
            let q2 = parse_query(&q.to_string()).unwrap();
            assert_eq!(q, q2);
        }
    }
}
