//! Property tests for the query layer: parser round-trips, hierarchy
//! characterisation agreement, and plan invariants on random queries.

use hq_query::gen::{random_hierarchical, random_query};
use hq_query::{
    is_hierarchical, non_hierarchical_witness, parse_query, plan, plan_with_order, witness_forest,
    PlanOrder, Step,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Display → parse is the identity on random queries.
    #[test]
    fn display_parse_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 6, 6);
        let reparsed = parse_query(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// The three hierarchy characterisations agree on arbitrary queries.
    #[test]
    fn characterisations_agree(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 6, 6);
        let pairwise = is_hierarchical(&q);
        prop_assert_eq!(pairwise, plan(&q).is_ok(), "{}", q);
        prop_assert_eq!(pairwise, witness_forest(&q).is_some(), "{}", q);
        // Witness exists exactly when non-hierarchical.
        prop_assert_eq!(pairwise, non_hierarchical_witness(&q).is_none());
    }

    /// Plans of hierarchical queries always have |vars| Rule-1 steps,
    /// |atoms|-1 Rule-2 steps, and only reference alive slots.
    #[test]
    fn plan_shape_invariants(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_hierarchical(&mut rng, 6, 6);
        for order in [PlanOrder::Rule1First, PlanOrder::Rule2First, PlanOrder::Rule1HighVar] {
            let p = plan_with_order(&q, order).unwrap();
            prop_assert_eq!(p.rule1_count(), q.var_count(), "{} {:?}", q, order);
            prop_assert_eq!(p.rule2_count(), q.atom_count() - 1, "{} {:?}", q, order);
            // Replay: every referenced slot must be alive, and each var
            // projected exactly once.
            let mut alive = vec![true; q.atom_count()];
            let mut projected = vec![false; q.var_count()];
            for step in p.steps() {
                match *step {
                    Step::ProjectOut { atom, var } => {
                        prop_assert!(alive[atom]);
                        prop_assert!(!projected[var.0], "var projected twice");
                        projected[var.0] = true;
                    }
                    Step::Merge { left, right } => {
                        prop_assert!(alive[left] && alive[right] && left != right);
                        alive[right] = false;
                    }
                }
            }
            prop_assert!(alive[p.root()]);
            prop_assert_eq!(alive.iter().filter(|&&a| a).count(), 1);
        }
    }

    /// Witness forests satisfy the Prop. 5.5 path property on every
    /// random hierarchical query.
    #[test]
    fn witness_forest_verifies(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_hierarchical(&mut rng, 6, 6);
        let forest = witness_forest(&q).expect("generator is sound");
        prop_assert!(hq_query::tree::verify_forest(&q, &forest), "{}", q);
    }
}
