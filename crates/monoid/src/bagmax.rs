//! The Bag-Set Maximization 2-monoid (Definition 5.9).
//!
//! Carrier: monotone vectors `x ∈ ℕ^ℕ` where `x(i)` is the best
//! multiplicity achievable with repair budget `i`. The operators are
//! convolutions over the `(ℕ, max, +)` and `(ℕ, max, ×)` semirings
//! (Eqs. (10)–(11)):
//!
//! ```text
//! (x ⊕ y)(i) = max_{i₁+i₂=i} x(i₁) + y(i₂)
//! (x ⊗ y)(i) = max_{i₁+i₂=i} x(i₁) × y(i₂)
//! ```
//!
//! Vectors are truncated to `cap + 1 = θ + 1` entries: a convolution
//! entry `i` only reads positions `≤ i`, so truncation is exact for
//! every budget up to `θ`. Each operation is `O(θ²)` time and `O(θ)`
//! space, which is where the `|D_r|²` factor in Theorem 5.11's runtime
//! comes from.

use crate::traits::TwoMonoid;
use std::fmt;

/// Inline capacity of a [`BudgetVec`]: vectors with `θ + 1 ≤ 8`
/// entries — the common small-budget case — live entirely on the
/// stack, so the engine's per-operation cost carries no allocator
/// traffic there (the ROADMAP's "per-op allocation dominates large-θ
/// BSM runs" item).
const INLINE: usize = 8;

/// The physical carrier: inline array for small budgets, heap vector
/// beyond [`INLINE`] entries. The representation is never observable —
/// equality, hashing, and debug formatting all go through the logical
/// slice.
#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [u64; INLINE] },
    Heap(Vec<u64>),
}

/// A truncated monotone budget vector.
#[derive(Clone)]
pub struct BudgetVec(Repr);

impl BudgetVec {
    /// Wraps explicit entries (inline when they fit).
    pub fn from_vec(v: Vec<u64>) -> Self {
        if v.len() <= INLINE {
            let mut buf = [0u64; INLINE];
            buf[..v.len()].copy_from_slice(&v);
            BudgetVec(Repr::Inline {
                len: v.len() as u8,
                buf,
            })
        } else {
            BudgetVec(Repr::Heap(v))
        }
    }

    /// A vector of `len` copies of `x` (the shape of `0` and `1̄`).
    pub fn filled(len: usize, x: u64) -> Self {
        if len <= INLINE {
            let mut buf = [0u64; INLINE];
            buf[..len].fill(x);
            BudgetVec(Repr::Inline {
                len: len as u8,
                buf,
            })
        } else {
            BudgetVec(Repr::Heap(vec![x; len]))
        }
    }

    /// The entries as a slice.
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// The entries as a mutable slice (length never changes in place).
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.0 {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Entry `i`: best multiplicity within repair budget `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.as_slice()[i]
    }

    /// Number of stored entries (`θ + 1`).
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the vector stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether entries are non-decreasing — the Definition 5.9 carrier
    /// invariant. Both ⊕ and ⊗ preserve it (property-tested).
    pub fn is_monotone(&self) -> bool {
        self.as_slice().windows(2).all(|w| w[0] <= w[1])
    }
}

impl PartialEq for BudgetVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BudgetVec {}

impl std::hash::Hash for BudgetVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for BudgetVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BudgetVec{:?}", self.as_slice())
    }
}

/// The Bag-Set Maximization 2-monoid with budget cap `θ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BagMaxMonoid {
    /// Maximum budget `θ`; vectors carry `θ + 1` entries.
    pub cap: usize,
}

impl BagMaxMonoid {
    /// Creates the monoid for budget cap `θ`.
    pub fn new(cap: usize) -> Self {
        BagMaxMonoid { cap }
    }

    fn len(&self) -> usize {
        self.cap + 1
    }

    /// The `★` vector of Definition 5.10: multiplicity 0 for free, 1
    /// from budget 1 on — the annotation of facts available only in the
    /// repair database.
    pub fn star(&self) -> BudgetVec {
        let mut v = BudgetVec::filled(self.len(), 1);
        v.as_mut_slice()[0] = 0;
        v
    }

    /// Builds a vector from explicit entries (padded by repeating the
    /// last entry; test convenience).
    ///
    /// # Panics
    /// Panics if `entries` is empty.
    pub fn vec_from(&self, entries: &[u64]) -> BudgetVec {
        assert!(!entries.is_empty());
        let mut v = BudgetVec::filled(self.len(), 0);
        for (i, slot) in v.as_mut_slice().iter_mut().enumerate() {
            *slot = *entries.get(i).unwrap_or(entries.last().expect("non-empty"));
        }
        v
    }

    fn convolve(&self, a: &BudgetVec, b: &BudgetVec, f: impl Fn(u64, u64) -> u64) -> BudgetVec {
        debug_assert_eq!(a.len(), self.len(), "operand built for a different cap");
        debug_assert_eq!(b.len(), self.len(), "operand built for a different cap");
        // Fast path for *step vectors* `[v0, v1, v1, …]` — which is the
        // shape of `0`, `1̄`, and `★`, i.e. every ψ-annotation, so the
        // bulk of an Algorithm 1 run's convolutions land here. Against a
        // monotone operand (the carrier invariant) and an `f` monotone
        // in each argument, the maximum over `i1 + i2 = i` is reached
        // either at `i2 = 0` or at `i2 = 1`:
        //   out(i) = max( f(x(i), v0), f(x(i-1), v1) )
        // — `O(θ)` instead of `O(θ²)`, bit-identical results (exact
        // integer arithmetic; max is order-insensitive).
        let step = |v: &BudgetVec| -> Option<(u64, u64)> {
            let vs = v.as_slice();
            let v0 = vs[0];
            let v1 = *vs.get(1).unwrap_or(&v0);
            vs[1..].iter().all(|&x| x == v1).then_some((v0, v1))
        };
        let (x, shape) = match (step(b), step(a)) {
            (Some(s), _) => (a, Some(s)),
            (None, Some(s)) => (b, Some(s)),
            (None, None) => (a, None),
        };
        let mut out = BudgetVec::filled(self.len(), 0);
        if let Some((v0, v1)) = shape {
            debug_assert!(x.is_monotone(), "carrier invariant violated");
            let xs = x.as_slice();
            let os = out.as_mut_slice();
            os[0] = f(xs[0], v0);
            for i in 1..xs.len() {
                os[i] = f(xs[i], v0).max(f(xs[i - 1], v1));
            }
            return out;
        }
        let (av, bv) = (a.as_slice(), b.as_slice());
        for (i, slot) in out.as_mut_slice().iter_mut().enumerate() {
            let mut best = 0;
            for (&ai, &bi) in av[..=i].iter().zip(bv[..=i].iter().rev()) {
                best = best.max(f(ai, bi));
            }
            *slot = best;
        }
        out
    }
}

impl TwoMonoid for BagMaxMonoid {
    type Elem = BudgetVec;

    /// The all-zeros vector.
    fn zero(&self) -> BudgetVec {
        BudgetVec::filled(self.len(), 0)
    }

    /// The all-ones vector (a fact already present in `D`).
    fn one(&self) -> BudgetVec {
        BudgetVec::filled(self.len(), 1)
    }

    /// Eq. (10): max-plus convolution.
    fn add(&self, a: &BudgetVec, b: &BudgetVec) -> BudgetVec {
        self.convolve(a, b, |x, y| x.saturating_add(y))
    }

    /// In-place max-plus convolution against a step vector: descending
    /// over `i`, `acc(i) = max(acc(i) + v0, acc(i-1) + v1)` needs no
    /// scratch — zero allocation on the engine's ⊕-fold hot path.
    /// Non-step operands fall back to the general convolution.
    fn add_assign(&self, acc: &mut BudgetVec, b: &BudgetVec) {
        let bs = b.as_slice();
        let v0 = bs[0];
        let v1 = *bs.get(1).unwrap_or(&v0);
        if bs[1..].iter().all(|&x| x == v1) {
            debug_assert!(acc.is_monotone(), "carrier invariant violated");
            let a = acc.as_mut_slice();
            for i in (1..a.len()).rev() {
                a[i] = a[i].saturating_add(v0).max(a[i - 1].saturating_add(v1));
            }
            a[0] = a[0].saturating_add(v0);
        } else {
            *acc = self.add(acc, b);
        }
    }

    /// Eq. (11): max-times convolution.
    fn mul(&self, a: &BudgetVec, b: &BudgetVec) -> BudgetVec {
        self.convolve(a, b, |x, y| x.saturating_mul(y))
    }

    /// `x ⊗ 0̄` is the all-zeros vector (every max-times term hits a
    /// zero factor), so fixpoints over BSM terminate — even though
    /// [`TwoMonoid::annihilating`] stays `false` to keep ⊗ counts on
    /// the Theorem 5.11 curve.
    fn fixpoint_convergent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{check_laws, distributivity_counterexample};

    fn m() -> BagMaxMonoid {
        BagMaxMonoid::new(4)
    }

    fn sample() -> Vec<BudgetVec> {
        let m = m();
        vec![
            m.zero(),
            m.one(),
            m.star(),
            m.vec_from(&[0, 2, 3, 3, 7]),
            m.vec_from(&[1, 1, 4, 4, 4]),
            m.vec_from(&[0, 0, 0, 5, 5]),
        ]
    }

    #[test]
    fn identities_have_right_shape() {
        let m = m();
        assert_eq!(m.zero().as_slice(), [0, 0, 0, 0, 0]);
        assert_eq!(m.one().as_slice(), [1, 1, 1, 1, 1]);
        assert_eq!(m.star().as_slice(), [0, 1, 1, 1, 1]);
    }

    #[test]
    fn small_vectors_inline_large_vectors_heap() {
        // Representation is invisible to equality/debug, but len
        // decides the carrier: θ + 1 ≤ 8 entries stay inline.
        let small = BagMaxMonoid::new(7).one();
        assert!(matches!(small, BudgetVec(Repr::Inline { .. })));
        let large = BagMaxMonoid::new(8).one();
        assert!(matches!(large, BudgetVec(Repr::Heap(_))));
        assert_eq!(format!("{small:?}"), "BudgetVec[1, 1, 1, 1, 1, 1, 1, 1]");
        // Inline/heap never compare by representation.
        let a = BudgetVec::from_vec(vec![1, 2, 3]);
        let b = BagMaxMonoid::new(2).vec_from(&[1, 2, 3]);
        assert_eq!(a, b);
        let big = BagMaxMonoid::new(20);
        assert!(big.add(&big.star(), &big.star()).is_monotone());
    }

    #[test]
    fn laws_hold() {
        let report = check_laws(&m(), &sample(), |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn not_distributive() {
        // Definition 5.9's structure is a 2-monoid but NOT a semiring.
        // The canonical witness: a = 1̄ fails a ⊗ (b ⊕ c) = ab ⊕ ac when
        // b and c must split budget.
        let sample = sample();
        let w = distributivity_counterexample(&m(), &sample, |a, b| a == b);
        assert!(w.is_some(), "bag-max monoid must not be distributive");
    }

    #[test]
    fn add_is_maxplus_convolution() {
        let m = m();
        // star ⊕ star: with budget i you can buy min(i,2) facts,
        // multiplicities add.
        let s = m.add(&m.star(), &m.star());
        assert_eq!(s.as_slice(), [0, 1, 2, 2, 2]);
    }

    #[test]
    fn mul_is_maxtimes_convolution() {
        let m = m();
        // (0,1,1,1,1) ⊗ (0,1,1,1,1): need one budget unit each side.
        let p = m.mul(&m.star(), &m.star());
        assert_eq!(p.as_slice(), [0, 0, 1, 1, 1]);
        // one ⊗ star = star (identity on the other side costs nothing).
        assert_eq!(m.mul(&m.one(), &m.star()), m.star());
    }

    #[test]
    fn fig1_hand_convolution() {
        // Mini version of the Fig. 1 reasoning: two repairable R-facts
        // (star each) ⊕ one existing fact (one) gives multiplicities
        // 1, 2, 3 at budgets 0, 1, 2.
        let m = m();
        let r = m.sum(&[m.star(), m.star(), m.one()]);
        assert_eq!(r.as_slice(), [1, 2, 3, 3, 3]);
    }

    #[test]
    fn operations_preserve_monotonicity() {
        let m = m();
        let s = sample();
        for a in &s {
            assert!(a.is_monotone());
            for b in &s {
                assert!(m.add(a, b).is_monotone(), "{a:?} ⊕ {b:?}");
                assert!(m.mul(a, b).is_monotone(), "{a:?} ⊗ {b:?}");
            }
        }
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let m = BagMaxMonoid::new(1);
        let huge = BudgetVec::from_vec(vec![u64::MAX, u64::MAX]);
        let r = m.mul(&huge, &huge);
        assert_eq!(r.get(0), u64::MAX);
    }

    #[test]
    fn cap_zero_degenerates_to_plain_maxtimes() {
        let m = BagMaxMonoid::new(0);
        let a = BudgetVec::from_vec(vec![3]);
        let b = BudgetVec::from_vec(vec![4]);
        assert_eq!(m.add(&a, &b).as_slice(), [7]);
        assert_eq!(m.mul(&a, &b).as_slice(), [12]);
    }
}
