//! The Bag-Set Maximization 2-monoid (Definition 5.9).
//!
//! Carrier: monotone vectors `x ∈ ℕ^ℕ` where `x(i)` is the best
//! multiplicity achievable with repair budget `i`. The operators are
//! convolutions over the `(ℕ, max, +)` and `(ℕ, max, ×)` semirings
//! (Eqs. (10)–(11)):
//!
//! ```text
//! (x ⊕ y)(i) = max_{i₁+i₂=i} x(i₁) + y(i₂)
//! (x ⊗ y)(i) = max_{i₁+i₂=i} x(i₁) × y(i₂)
//! ```
//!
//! Vectors are truncated to `cap + 1 = θ + 1` entries: a convolution
//! entry `i` only reads positions `≤ i`, so truncation is exact for
//! every budget up to `θ`. Each operation is `O(θ²)` time and `O(θ)`
//! space, which is where the `|D_r|²` factor in Theorem 5.11's runtime
//! comes from.

use crate::traits::TwoMonoid;
use std::fmt;

/// A truncated monotone budget vector.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BudgetVec(pub Vec<u64>);

impl BudgetVec {
    /// Entry `i`: best multiplicity within repair budget `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// Number of stored entries (`θ + 1`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector stores no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether entries are non-decreasing — the Definition 5.9 carrier
    /// invariant. Both ⊕ and ⊗ preserve it (property-tested).
    pub fn is_monotone(&self) -> bool {
        self.0.windows(2).all(|w| w[0] <= w[1])
    }
}

impl fmt::Debug for BudgetVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BudgetVec{:?}", self.0)
    }
}

/// The Bag-Set Maximization 2-monoid with budget cap `θ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BagMaxMonoid {
    /// Maximum budget `θ`; vectors carry `θ + 1` entries.
    pub cap: usize,
}

impl BagMaxMonoid {
    /// Creates the monoid for budget cap `θ`.
    pub fn new(cap: usize) -> Self {
        BagMaxMonoid { cap }
    }

    fn len(&self) -> usize {
        self.cap + 1
    }

    /// The `★` vector of Definition 5.10: multiplicity 0 for free, 1
    /// from budget 1 on — the annotation of facts available only in the
    /// repair database.
    pub fn star(&self) -> BudgetVec {
        let mut v = vec![1; self.len()];
        v[0] = 0;
        BudgetVec(v)
    }

    /// Builds a vector from explicit entries (padded by repeating the
    /// last entry; test convenience).
    ///
    /// # Panics
    /// Panics if `entries` is empty.
    pub fn vec_from(&self, entries: &[u64]) -> BudgetVec {
        assert!(!entries.is_empty());
        let mut v = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            v.push(*entries.get(i).unwrap_or(entries.last().expect("non-empty")));
        }
        BudgetVec(v)
    }

    fn convolve(&self, a: &BudgetVec, b: &BudgetVec, f: impl Fn(u64, u64) -> u64) -> BudgetVec {
        debug_assert_eq!(a.len(), self.len(), "operand built for a different cap");
        debug_assert_eq!(b.len(), self.len(), "operand built for a different cap");
        // Fast path for *step vectors* `[v0, v1, v1, …]` — which is the
        // shape of `0`, `1̄`, and `★`, i.e. every ψ-annotation, so the
        // bulk of an Algorithm 1 run's convolutions land here. Against a
        // monotone operand (the carrier invariant) and an `f` monotone
        // in each argument, the maximum over `i1 + i2 = i` is reached
        // either at `i2 = 0` or at `i2 = 1`:
        //   out(i) = max( f(x(i), v0), f(x(i-1), v1) )
        // — `O(θ)` instead of `O(θ²)`, bit-identical results (exact
        // integer arithmetic; max is order-insensitive).
        let step = |v: &BudgetVec| -> Option<(u64, u64)> {
            let v0 = v.0[0];
            let v1 = *v.0.get(1).unwrap_or(&v0);
            v.0[1..].iter().all(|&x| x == v1).then_some((v0, v1))
        };
        let (x, shape) = match (step(b), step(a)) {
            (Some(s), _) => (a, Some(s)),
            (None, Some(s)) => (b, Some(s)),
            (None, None) => (a, None),
        };
        if let Some((v0, v1)) = shape {
            debug_assert!(x.is_monotone(), "carrier invariant violated");
            let mut out = Vec::with_capacity(x.len());
            out.push(f(x.0[0], v0));
            for i in 1..x.len() {
                out.push(f(x.0[i], v0).max(f(x.0[i - 1], v1)));
            }
            return BudgetVec(out);
        }
        let n = self.len();
        let mut out = vec![0u64; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut best = 0;
            for (&ai, &bi) in a.0[..=i].iter().zip(b.0[..=i].iter().rev()) {
                best = best.max(f(ai, bi));
            }
            *slot = best;
        }
        BudgetVec(out)
    }
}

impl TwoMonoid for BagMaxMonoid {
    type Elem = BudgetVec;

    /// The all-zeros vector.
    fn zero(&self) -> BudgetVec {
        BudgetVec(vec![0; self.len()])
    }

    /// The all-ones vector (a fact already present in `D`).
    fn one(&self) -> BudgetVec {
        BudgetVec(vec![1; self.len()])
    }

    /// Eq. (10): max-plus convolution.
    fn add(&self, a: &BudgetVec, b: &BudgetVec) -> BudgetVec {
        self.convolve(a, b, |x, y| x.saturating_add(y))
    }

    /// In-place max-plus convolution against a step vector: descending
    /// over `i`, `acc(i) = max(acc(i) + v0, acc(i-1) + v1)` needs no
    /// scratch — zero allocation on the engine's ⊕-fold hot path.
    /// Non-step operands fall back to the general convolution.
    fn add_assign(&self, acc: &mut BudgetVec, b: &BudgetVec) {
        let v0 = b.0[0];
        let v1 = *b.0.get(1).unwrap_or(&v0);
        if b.0[1..].iter().all(|&x| x == v1) {
            debug_assert!(acc.is_monotone(), "carrier invariant violated");
            for i in (1..acc.0.len()).rev() {
                acc.0[i] = acc.0[i]
                    .saturating_add(v0)
                    .max(acc.0[i - 1].saturating_add(v1));
            }
            acc.0[0] = acc.0[0].saturating_add(v0);
        } else {
            *acc = self.add(acc, b);
        }
    }

    /// Eq. (11): max-times convolution.
    fn mul(&self, a: &BudgetVec, b: &BudgetVec) -> BudgetVec {
        self.convolve(a, b, |x, y| x.saturating_mul(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{check_laws, distributivity_counterexample};

    fn m() -> BagMaxMonoid {
        BagMaxMonoid::new(4)
    }

    fn sample() -> Vec<BudgetVec> {
        let m = m();
        vec![
            m.zero(),
            m.one(),
            m.star(),
            m.vec_from(&[0, 2, 3, 3, 7]),
            m.vec_from(&[1, 1, 4, 4, 4]),
            m.vec_from(&[0, 0, 0, 5, 5]),
        ]
    }

    #[test]
    fn identities_have_right_shape() {
        let m = m();
        assert_eq!(m.zero().0, vec![0, 0, 0, 0, 0]);
        assert_eq!(m.one().0, vec![1, 1, 1, 1, 1]);
        assert_eq!(m.star().0, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn laws_hold() {
        let report = check_laws(&m(), &sample(), |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn not_distributive() {
        // Definition 5.9's structure is a 2-monoid but NOT a semiring.
        // The canonical witness: a = 1̄ fails a ⊗ (b ⊕ c) = ab ⊕ ac when
        // b and c must split budget.
        let sample = sample();
        let w = distributivity_counterexample(&m(), &sample, |a, b| a == b);
        assert!(w.is_some(), "bag-max monoid must not be distributive");
    }

    #[test]
    fn add_is_maxplus_convolution() {
        let m = m();
        // star ⊕ star: with budget i you can buy min(i,2) facts,
        // multiplicities add.
        let s = m.add(&m.star(), &m.star());
        assert_eq!(s.0, vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn mul_is_maxtimes_convolution() {
        let m = m();
        // (0,1,1,1,1) ⊗ (0,1,1,1,1): need one budget unit each side.
        let p = m.mul(&m.star(), &m.star());
        assert_eq!(p.0, vec![0, 0, 1, 1, 1]);
        // one ⊗ star = star (identity on the other side costs nothing).
        assert_eq!(m.mul(&m.one(), &m.star()), m.star());
    }

    #[test]
    fn fig1_hand_convolution() {
        // Mini version of the Fig. 1 reasoning: two repairable R-facts
        // (star each) ⊕ one existing fact (one) gives multiplicities
        // 1, 2, 3 at budgets 0, 1, 2.
        let m = m();
        let r = m.sum(&[m.star(), m.star(), m.one()]);
        assert_eq!(r.0, vec![1, 2, 3, 3, 3]);
    }

    #[test]
    fn operations_preserve_monotonicity() {
        let m = m();
        let s = sample();
        for a in &s {
            assert!(a.is_monotone());
            for b in &s {
                assert!(m.add(a, b).is_monotone(), "{a:?} ⊕ {b:?}");
                assert!(m.mul(a, b).is_monotone(), "{a:?} ⊗ {b:?}");
            }
        }
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let m = BagMaxMonoid::new(1);
        let huge = BudgetVec(vec![u64::MAX, u64::MAX]);
        let r = m.mul(&huge, &huge);
        assert_eq!(r.0[0], u64::MAX);
    }

    #[test]
    fn cap_zero_degenerates_to_plain_maxtimes() {
        let m = BagMaxMonoid::new(0);
        let a = BudgetVec(vec![3]);
        let b = BudgetVec(vec![4]);
        assert_eq!(m.add(&a, &b).0, vec![7]);
        assert_eq!(m.mul(&a, &b).0, vec![12]);
    }
}
