//! Classical commutative semirings, packaged as 2-monoids.
//!
//! Every commutative semiring *is* a 2-monoid (Definition 5.6 drops
//! distributivity and weakens annihilation, it does not forbid them),
//! so the unifying algorithm also runs over these — recovering
//! classical semiring query evaluation on hierarchical queries:
//!
//! * [`BoolMonoid`] — Boolean query evaluation (`Q(D)` true/false);
//! * [`CountMonoid`] — the bag-set value `Q(D)` (number of distinct
//!   satisfying assignments);
//! * [`TropicalMinMonoid`] — minimum total fact-weight of a witness
//!   (min-plus provenance).
//!
//! These also serve as the experiment E12 contrast: the law-checkers
//! find *no* distributivity counterexample here, while they do for all
//! three problem monoids — which is exactly why those problems are
//! hard beyond hierarchical queries while semiring evaluation extends
//! to all acyclic queries.

use crate::traits::{DenseFold, Semiring, TwoMonoid};

/// The Boolean semiring `({⊥,⊤}, ∨, ∧)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolMonoid;

impl TwoMonoid for BoolMonoid {
    type Elem = bool;

    fn zero(&self) -> bool {
        false
    }

    fn one(&self) -> bool {
        true
    }

    fn add(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }

    fn mul(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }

    fn annihilating(&self) -> bool {
        true
    }
}

impl Semiring for BoolMonoid {}

/// The counting semiring `(ℕ, +, ×)` (saturating at `u64::MAX`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountMonoid;

impl TwoMonoid for CountMonoid {
    type Elem = u64;

    fn zero(&self) -> u64 {
        0
    }

    fn one(&self) -> u64 {
        1
    }

    fn add(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }

    fn mul(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_mul(*b)
    }

    fn annihilating(&self) -> bool {
        true
    }

    fn fold_assign(&self, acc: &mut u64, run: &[u64]) {
        self.fold_dense(acc, run);
    }
}

impl DenseFold for CountMonoid {
    /// Dense saturating sum over a contiguous run. `saturating_add` is
    /// associative and branch-predictable (the saturation branch never
    /// fires on realistic counts), so LLVM vectorises the loop; the
    /// per-element operation and order match the generic path exactly.
    fn fold_dense(&self, acc: &mut u64, run: &[u64]) {
        let mut a = *acc;
        for x in run {
            a = a.saturating_add(*x);
        }
        *acc = a;
    }
}

impl Semiring for CountMonoid {}

/// The real sum-product semiring `(ℝ≥0, +, ×)`.
///
/// Running Algorithm 1 over it with probability annotations computes
/// the **expected bag-set value** `E[Q(D)] = Σ_assignments Π p(fact)`
/// on a tuple-independent database — a useful companion statistic to
/// the PQE marginal probability (linearity of expectation needs no
/// independence bookkeeping, so a plain semiring suffices).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RealSemiring;

impl TwoMonoid for RealSemiring {
    type Elem = f64;

    fn zero(&self) -> f64 {
        0.0
    }

    fn one(&self) -> f64 {
        1.0
    }

    fn add(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a * b
    }

    /// IEEE-754-aware support predicate (same rationale as
    /// [`crate::prob::ProbMonoid::is_zero`]): `-0.0` is zero, `NaN` is
    /// kept.
    fn is_zero(&self, a: &f64) -> bool {
        *a == 0.0
    }

    fn annihilating(&self) -> bool {
        true
    }

    fn fold_assign(&self, acc: &mut f64, run: &[f64]) {
        self.fold_dense(acc, run);
    }
}

impl DenseFold for RealSemiring {
    /// Dense f64 sum in strict left-to-right order. Reassociating into
    /// SIMD lanes would change the rounding sequence, so the loop keeps
    /// the scalar dependency chain — the win over the generic path is
    /// dropping the per-element group-boundary comparison, which LLVM
    /// can then unroll.
    fn fold_dense(&self, acc: &mut f64, run: &[f64]) {
        let mut a = *acc;
        for x in run {
            a += x;
        }
        *acc = a;
    }
}

impl Semiring for RealSemiring {}

/// The min-plus (tropical) semiring `(ℕ ∪ {∞}, min, +)` with
/// `∞ = u64::MAX` as the ⊕-identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TropicalMinMonoid;

/// The tropical "infinity".
pub const TROPICAL_INF: u64 = u64::MAX;

impl TwoMonoid for TropicalMinMonoid {
    type Elem = u64;

    fn zero(&self) -> u64 {
        TROPICAL_INF
    }

    fn one(&self) -> u64 {
        0
    }

    fn add(&self, a: &u64, b: &u64) -> u64 {
        *a.min(b)
    }

    fn mul(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }

    /// `a + ∞ saturates to ∞`, so tropical `0` annihilates.
    fn annihilating(&self) -> bool {
        true
    }
}

impl Semiring for TropicalMinMonoid {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{annihilation_counterexample, check_laws, distributivity_counterexample};

    #[test]
    fn bool_semiring_laws_and_distributivity() {
        let sample = [false, true];
        let report = check_laws(&BoolMonoid, &sample, |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
        assert!(distributivity_counterexample(&BoolMonoid, &sample, |a, b| a == b).is_none());
        assert!(annihilation_counterexample(&BoolMonoid, &sample, |a, b| a == b).is_none());
    }

    #[test]
    fn count_semiring_laws_and_distributivity() {
        let sample: Vec<u64> = (0..8).collect();
        let report = check_laws(&CountMonoid, &sample, |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
        assert!(distributivity_counterexample(&CountMonoid, &sample, |a, b| a == b).is_none());
    }

    #[test]
    fn tropical_semiring_laws_and_distributivity() {
        let sample = [0u64, 1, 2, 5, 10, TROPICAL_INF];
        let report = check_laws(&TropicalMinMonoid, &sample, |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
        assert!(
            distributivity_counterexample(&TropicalMinMonoid, &sample, |a, b| a == b).is_none()
        );
        assert!(annihilation_counterexample(&TropicalMinMonoid, &sample, |a, b| a == b).is_none());
    }

    #[test]
    fn real_semiring_laws_and_distributivity() {
        let sample = [0.0, 0.25, 0.5, 1.0, 2.0];
        let eq = |a: &f64, b: &f64| (a - b).abs() < 1e-12;
        let report = check_laws(&RealSemiring, &sample, eq);
        assert!(report.all_hold(), "{report:?}");
        assert!(distributivity_counterexample(&RealSemiring, &sample, eq).is_none());
    }

    #[test]
    fn annihilating_flags_are_consistent() {
        use crate::laws::annihilating_flag_consistent;
        assert!(BoolMonoid.annihilating());
        assert!(CountMonoid.annihilating());
        assert!(RealSemiring.annihilating());
        assert!(TropicalMinMonoid.annihilating());
        assert!(annihilating_flag_consistent(
            &BoolMonoid,
            &[false, true],
            |a, b| a == b
        ));
        let nats: Vec<u64> = (0..8).collect();
        assert!(annihilating_flag_consistent(&CountMonoid, &nats, |a, b| a == b));
        let trop = [0u64, 1, 5, TROPICAL_INF];
        assert!(annihilating_flag_consistent(
            &TropicalMinMonoid,
            &trop,
            |a, b| a == b
        ));
        let reals = [0.0, 0.5, 1.0, 2.0];
        assert!(annihilating_flag_consistent(
            &RealSemiring,
            &reals,
            |a, b| a == b
        ));
    }

    #[test]
    fn dense_folds_match_generic_loop() {
        let counts: Vec<u64> = (0..257).map(|i| i * 31 % 97).collect();
        let mut dense = 5u64;
        let mut generic = 5u64;
        CountMonoid.fold_dense(&mut dense, &counts);
        for x in &counts {
            CountMonoid.add_assign(&mut generic, x);
        }
        assert_eq!(dense, generic);
        // Saturation is preserved by the dense path.
        let mut sat = u64::MAX - 1;
        CountMonoid.fold_dense(&mut sat, &[5, 7]);
        assert_eq!(sat, u64::MAX);

        let reals: Vec<f64> = (0..257).map(|i| (i as f64) * 0.1 + 1e-9).collect();
        let mut dense = 0.25f64;
        let mut generic = 0.25f64;
        RealSemiring.fold_dense(&mut dense, &reals);
        for x in &reals {
            RealSemiring.add_assign(&mut generic, x);
        }
        assert_eq!(dense.to_bits(), generic.to_bits());
    }

    #[test]
    fn tropical_picks_cheapest_witness() {
        let m = TropicalMinMonoid;
        // min over {3+4, 2+9} = 7
        let lhs = m.mul(&3, &4);
        let rhs = m.mul(&2, &9);
        assert_eq!(m.add(&lhs, &rhs), 7);
        assert_eq!(m.add(&TROPICAL_INF, &5), 5);
        assert_eq!(m.mul(&TROPICAL_INF, &5), TROPICAL_INF);
    }
}
