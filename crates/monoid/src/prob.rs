//! The Probabilistic Query Evaluation 2-monoid (Definition 5.7).
//!
//! Carrier `K = [0, 1]`; `p ⊗ q = p·q` is the probability of the
//! conjunction of independent events and `p ⊕ q = 1 − (1−p)(1−q)` the
//! probability of their disjunction. ⊗ does **not** distribute over ⊕
//! (e.g. `a ⊗ (b ⊕ c) ≠ (a⊗b) ⊕ (a⊗c)` for `a = b = c = 1/2`), which is
//! expected: PQE is #P-hard for non-hierarchical queries, so a
//! distributive instantiation would be too strong.
//!
//! Two carriers are provided: fast `f64` ([`ProbMonoid`]) for
//! benchmarks, and exact [`Rational`] ([`ExactProbMonoid`]) used as the
//! correctness oracle in differential tests.

use crate::traits::{DenseFold, TwoMonoid};
use hq_arith::Rational;

/// Floating-point probability 2-monoid over `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbMonoid;

impl TwoMonoid for ProbMonoid {
    type Elem = f64;

    fn zero(&self) -> f64 {
        0.0
    }

    fn one(&self) -> f64 {
        1.0
    }

    /// Eq. (3): `p ⊕ q = 1 − (1−p)(1−q)`.
    fn add(&self, a: &f64, b: &f64) -> f64 {
        // The multiplied-out form `a + b - a*b` loses precision when
        // both probabilities are near 1; the complement form is exact
        // there and equally cheap.
        1.0 - (1.0 - a) * (1.0 - b)
    }

    /// Eq. (2): `p ⊗ q = p·q`.
    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a * b
    }

    /// IEEE-754-aware support predicate: `-0.0` *is* zero (a
    /// probability-zero fact is absent regardless of the sign bit the
    /// arithmetic happened to produce), `NaN` is *not* (it never
    /// compares equal to anything, so a NaN annotation is
    /// deterministically kept by Rule 1 pruning on every backend rather
    /// than being pruned on some and kept on others). NaN is outside
    /// the declared carrier `[0, 1]` — the PQE front-ends reject it up
    /// front — so [`TwoMonoid::annihilating`] below stays sound; a
    /// caller feeding NaN through the raw engine gets the
    /// carrier-contract behavior (one-sided Rule 2 rows are treated as
    /// absent), not arithmetic NaN propagation.
    fn is_zero(&self, a: &f64) -> bool {
        *a == 0.0
    }

    /// `p · 0 = 0` on the whole carrier `[0, 1]` (NaN/∞ are outside
    /// the carrier and rejected by the front-ends).
    fn annihilating(&self) -> bool {
        true
    }

    fn fold_assign(&self, acc: &mut f64, run: &[f64]) {
        self.fold_dense(acc, run);
    }
}

impl DenseFold for ProbMonoid {
    /// Dense ⊕-fold over a run of probabilities. Each step evaluates
    /// the *same* IEEE-754 expression as [`TwoMonoid::add`]
    /// (`acc = 1 − (1−acc)(1−x)`), in the same left-to-right order, so
    /// the result is bit-identical to the generic `add_assign` loop.
    /// A running-complement accumulator (`c *= 1−x`, complement once
    /// at the end) would be faster still but is **not** bit-identical
    /// — `1 − (1 − q) ≠ q` for tiny `q` in f64 — so it is
    /// deliberately not used. The win here is the branch-free slice
    /// loop: no group-boundary comparison per element, and LLVM can
    /// unroll the fused multiply chain.
    fn fold_dense(&self, acc: &mut f64, run: &[f64]) {
        let mut a = *acc;
        for x in run {
            a = 1.0 - (1.0 - a) * (1.0 - x);
        }
        *acc = a;
    }
}

/// Exact-rational probability 2-monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactProbMonoid;

impl TwoMonoid for ExactProbMonoid {
    type Elem = Rational;

    fn zero(&self) -> Rational {
        Rational::zero()
    }

    fn one(&self) -> Rational {
        Rational::one()
    }

    fn add(&self, a: &Rational, b: &Rational) -> Rational {
        let one = Rational::one();
        &one - &(&(&one - a) * &(&one - b))
    }

    fn mul(&self, a: &Rational, b: &Rational) -> Rational {
        a * b
    }

    fn annihilating(&self) -> bool {
        true
    }
}

/// Approximate equality for floating-point probability tests.
pub fn approx_eq(a: &f64, b: &f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs() + b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{annihilation_counterexample, check_laws, distributivity_counterexample};

    fn sample_f64() -> Vec<f64> {
        vec![0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
    }

    fn sample_rat() -> Vec<Rational> {
        [(0, 1), (1, 10), (1, 4), (1, 2), (3, 4), (9, 10), (1, 1)]
            .iter()
            .map(|&(p, q)| Rational::ratio(p, q))
            .collect()
    }

    #[test]
    fn f64_monoid_laws_hold() {
        let report = check_laws(&ProbMonoid, &sample_f64(), approx_eq);
        assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn exact_monoid_laws_hold() {
        let report = check_laws(&ExactProbMonoid, &sample_rat(), |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn not_distributive() {
        // The paper stresses ⊗ does not distribute over ⊕; exhibit it.
        let sf = sample_f64();
        let w = distributivity_counterexample(&ProbMonoid, &sf, approx_eq);
        assert!(w.is_some(), "probability monoid must not be distributive");
        let sr = sample_rat();
        let w = distributivity_counterexample(&ExactProbMonoid, &sr, |a, b| a == b);
        assert!(w.is_some());
    }

    #[test]
    fn is_zero_ieee754_edge_cases() {
        use crate::laws::{annihilating_flag_consistent, is_zero_consistent};
        let m = ProbMonoid;
        // -0.0 is semantically absent; NaN is deterministically kept.
        assert!(m.is_zero(&0.0));
        assert!(m.is_zero(&-0.0));
        assert!(!m.is_zero(&f64::NAN));
        assert!(!m.is_zero(&1e-300));
        let mut sample = sample_f64();
        sample.push(-0.0);
        assert!(is_zero_consistent(&m, &sample, |a, b| a == b));
        assert!(annihilating_flag_consistent(&m, &sample, approx_eq));
        assert!(annihilating_flag_consistent(
            &ExactProbMonoid,
            &sample_rat(),
            |a, b| a == b
        ));
    }

    #[test]
    fn annihilation_does_hold_here() {
        // p ⊗ 0 = 0 happens to hold for probabilities (unlike the
        // Shapley monoid) — the 2-monoid definition just doesn't demand it.
        let sf = sample_f64();
        assert!(annihilation_counterexample(&ProbMonoid, &sf, approx_eq).is_none());
    }

    #[test]
    fn add_matches_inclusion_exclusion() {
        let m = ProbMonoid;
        let p = m.add(&0.5, &0.5);
        assert!(approx_eq(&p, &0.75));
        let q = m.add(&0.3, &0.4);
        assert!(approx_eq(&q, &(0.3 + 0.4 - 0.12)));
    }

    #[test]
    fn exact_and_float_agree() {
        let fm = ProbMonoid;
        let em = ExactProbMonoid;
        let cases = [(0.25, 0.5), (0.1, 0.9), (0.75, 0.75)];
        for (a, b) in cases {
            let (ra, rb) = (
                Rational::ratio((a * 100.0) as u64, 100),
                Rational::ratio((b * 100.0) as u64, 100),
            );
            assert!(approx_eq(&fm.add(&a, &b), &em.add(&ra, &rb).to_f64()));
            assert!(approx_eq(&fm.mul(&a, &b), &em.mul(&ra, &rb).to_f64()));
        }
    }

    #[test]
    fn dense_fold_bit_identical_to_generic_loop() {
        // The DenseFold override must match the default add_assign
        // loop bit-for-bit, including awkward magnitudes where a
        // complement-accumulator shortcut would diverge.
        let m = ProbMonoid;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for len in [0usize, 1, 2, 3, 7, 64, 1000] {
            let mut run: Vec<f64> = (0..len).map(|_| next()).collect();
            // Stress the near-0/near-1 edges where rounding bites.
            if len >= 3 {
                run[0] = 1e-300;
                run[1] = 1.0 - 1e-16;
                run[2] = f64::MIN_POSITIVE;
            }
            let mut dense = next();
            let mut generic = dense;
            m.fold_dense(&mut dense, &run);
            for x in &run {
                m.add_assign(&mut generic, x);
            }
            assert_eq!(dense.to_bits(), generic.to_bits(), "len {len}");
        }
    }

    #[test]
    fn sum_of_independent_events() {
        // 1 - (1-p)^3 for three events of probability 1/3.
        let m = ProbMonoid;
        let xs = [1.0 / 3.0; 3];
        let expected = 1.0 - (2.0f64 / 3.0).powi(3);
        assert!(approx_eq(&m.sum(&xs), &expected));
    }
}
