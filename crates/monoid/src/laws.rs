//! Generic algebraic-law checkers for 2-monoids.
//!
//! Every instantiation's property-test suite runs these over random
//! elements. Equality is a caller-supplied predicate so floating-point
//! monoids can use approximate comparison.
//!
//! [`distributivity_counterexample`] searches for witnesses that
//! ⊗ does **not** distribute over ⊕ — the paper's Section 1 argument
//! for why the unifying algorithm is limited to hierarchical queries is
//! made executable by exhibiting such witnesses for all three problem
//! monoids (experiment E12).

use crate::traits::TwoMonoid;

/// All the law checks in one report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawReport {
    /// ⊕ commutative on the sample.
    pub add_commutative: bool,
    /// ⊕ associative on the sample.
    pub add_associative: bool,
    /// `a ⊕ 0 == a` on the sample.
    pub add_identity: bool,
    /// ⊗ commutative on the sample.
    pub mul_commutative: bool,
    /// ⊗ associative on the sample.
    pub mul_associative: bool,
    /// `a ⊗ 1 == a` on the sample.
    pub mul_identity: bool,
    /// `0 ⊗ 0 == 0`.
    pub zero_mul_zero: bool,
}

impl LawReport {
    /// Whether every 2-monoid law held.
    pub fn all_hold(&self) -> bool {
        self.add_commutative
            && self.add_associative
            && self.add_identity
            && self.mul_commutative
            && self.mul_associative
            && self.mul_identity
            && self.zero_mul_zero
    }
}

/// Checks every Definition 5.6 law over all pairs/triples drawn from
/// `sample`.
pub fn check_laws<M: TwoMonoid>(
    m: &M,
    sample: &[M::Elem],
    eq: impl Fn(&M::Elem, &M::Elem) -> bool,
) -> LawReport {
    let mut report = LawReport {
        add_commutative: true,
        add_associative: true,
        add_identity: true,
        mul_commutative: true,
        mul_associative: true,
        mul_identity: true,
        zero_mul_zero: eq(&m.mul(&m.zero(), &m.zero()), &m.zero()),
    };
    let zero = m.zero();
    let one = m.one();
    for a in sample {
        if !eq(&m.add(a, &zero), a) {
            report.add_identity = false;
        }
        if !eq(&m.mul(a, &one), a) {
            report.mul_identity = false;
        }
        for b in sample {
            if !eq(&m.add(a, b), &m.add(b, a)) {
                report.add_commutative = false;
            }
            if !eq(&m.mul(a, b), &m.mul(b, a)) {
                report.mul_commutative = false;
            }
            for c in sample {
                if !eq(&m.add(&m.add(a, b), c), &m.add(a, &m.add(b, c))) {
                    report.add_associative = false;
                }
                if !eq(&m.mul(&m.mul(a, b), c), &m.mul(a, &m.mul(b, c))) {
                    report.mul_associative = false;
                }
            }
        }
    }
    report
}

/// Searches `sample` for a triple violating
/// `a ⊗ (b ⊕ c) == (a ⊗ b) ⊕ (a ⊗ c)`; returns the first witness.
pub fn distributivity_counterexample<'a, M: TwoMonoid>(
    m: &M,
    sample: &'a [M::Elem],
    eq: impl Fn(&M::Elem, &M::Elem) -> bool,
) -> Option<(&'a M::Elem, &'a M::Elem, &'a M::Elem)> {
    for a in sample {
        for b in sample {
            for c in sample {
                let lhs = m.mul(a, &m.add(b, c));
                let rhs = m.add(&m.mul(a, b), &m.mul(a, c));
                if !eq(&lhs, &rhs) {
                    return Some((a, b, c));
                }
            }
        }
    }
    None
}

/// Searches for a violation of annihilation-by-zero `a ⊗ 0 == 0`.
pub fn annihilation_counterexample<'a, M: TwoMonoid>(
    m: &M,
    sample: &'a [M::Elem],
    eq: impl Fn(&M::Elem, &M::Elem) -> bool,
) -> Option<&'a M::Elem> {
    let zero = m.zero();
    sample.iter().find(|a| !eq(&m.mul(a, &zero), &zero))
}

/// Checks the [`TwoMonoid::annihilating`] declaration against the
/// sample: a monoid declaring `a ⊗ 0 = 0` must exhibit no
/// counterexample (the converse — a conservative `false` on an
/// actually-annihilating carrier — is always sound, it only costs
/// skipped-⊗ opportunities).
pub fn annihilating_flag_consistent<M: TwoMonoid>(
    m: &M,
    sample: &[M::Elem],
    eq: impl Fn(&M::Elem, &M::Elem) -> bool,
) -> bool {
    !m.annihilating() || annihilation_counterexample(m, sample, eq).is_none()
}

/// Checks the [`TwoMonoid::is_zero`] predicate against the sample: it
/// must hold on `zero()` itself and agree with `eq(·, zero())` on every
/// sampled element.
pub fn is_zero_consistent<M: TwoMonoid>(
    m: &M,
    sample: &[M::Elem],
    eq: impl Fn(&M::Elem, &M::Elem) -> bool,
) -> bool {
    let zero = m.zero();
    m.is_zero(&zero) && sample.iter().all(|a| m.is_zero(a) == eq(a, &zero))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (u64, +, ×): a genuine semiring — all laws hold, distributive,
    /// annihilating.
    #[derive(Clone)]
    struct NatSemiring;
    impl TwoMonoid for NatSemiring {
        type Elem = u64;
        fn zero(&self) -> u64 {
            0
        }
        fn one(&self) -> u64 {
            1
        }
        fn add(&self, a: &u64, b: &u64) -> u64 {
            a + b
        }
        fn mul(&self, a: &u64, b: &u64) -> u64 {
            a * b
        }
    }

    /// A broken structure (subtraction is not commutative).
    #[derive(Clone)]
    struct Broken;
    impl TwoMonoid for Broken {
        type Elem = i64;
        fn zero(&self) -> i64 {
            0
        }
        fn one(&self) -> i64 {
            0
        }
        fn add(&self, a: &i64, b: &i64) -> i64 {
            a - b
        }
        fn mul(&self, a: &i64, b: &i64) -> i64 {
            a + b
        }
    }

    #[test]
    fn semiring_passes_all_laws() {
        let sample: Vec<u64> = (0..6).collect();
        let report = check_laws(&NatSemiring, &sample, |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
        assert!(distributivity_counterexample(&NatSemiring, &sample, |a, b| a == b).is_none());
        assert!(annihilation_counterexample(&NatSemiring, &sample, |a, b| a == b).is_none());
    }

    #[test]
    fn broken_structure_is_flagged() {
        let sample: Vec<i64> = (-2..3).collect();
        let report = check_laws(&Broken, &sample, |a, b| a == b);
        assert!(!report.add_commutative);
        assert!(!report.all_hold());
    }
}
