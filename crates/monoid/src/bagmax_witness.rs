//! Witness-tracking variant of the Bag-Set Maximization 2-monoid.
//!
//! [`super::bagmax::BagMaxMonoid`] answers *how large* `Q(D')` can get
//! per budget; this monoid additionally answers *which facts to add*.
//! Every budget entry carries the set of repair facts realising it, and
//! the convolutions (Eqs. (10)–(11)) propagate the argmax split's
//! witnesses. A witness never exceeds the budget index, so vectors stay
//! `O(θ²)` fact-ids — the same asymptotics as Theorem 5.11 with a θ
//! factor on the constants.
//!
//! Algebraic status: the *value* components form the Definition 5.9
//! 2-monoid exactly; witnesses are tie-broken deterministically
//! (lexicographically smallest fact-id set among maximal values) so the
//! operations remain commutative and the law checkers pass. Associativity
//! of the witness component holds up to value-equivalence — different
//! association orders may pick different, equally-optimal witnesses —
//! which is why correctness is stated (and property-tested) as "the
//! returned set is a *valid* optimal repair", not as structural equality.

use crate::traits::TwoMonoid;
use std::fmt;

/// One budget entry: best multiplicity and a repair-fact set achieving it.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WitnessEntry {
    /// Best multiplicity within this budget.
    pub value: u64,
    /// Sorted ids of the repair facts used (length ≤ budget index).
    pub facts: Vec<u32>,
}

/// A budget vector with witnesses.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WitnessVec(pub Vec<WitnessEntry>);

impl WitnessVec {
    /// The best value within budget `i`.
    pub fn value_at(&self, i: usize) -> u64 {
        self.0[i].value
    }

    /// The witness fact-ids for budget `i`.
    pub fn facts_at(&self, i: usize) -> &[u32] {
        &self.0[i].facts
    }

    /// Number of entries (`θ + 1`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector stores no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The plain value vector (for comparison with the value-only monoid).
    pub fn values(&self) -> Vec<u64> {
        self.0.iter().map(|e| e.value).collect()
    }
}

impl fmt::Debug for WitnessVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WitnessVec[")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}@{:?}", e.value, e.facts)?;
        }
        write!(f, "]")
    }
}

/// Merges two sorted fact-id lists (witnesses are disjoint by
/// construction: supports of combined sub-formulas are disjoint).
fn merge_facts(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The witness-tracking Bag-Set Maximization 2-monoid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BagMaxWitnessMonoid {
    /// Maximum budget `θ`.
    pub cap: usize,
}

impl BagMaxWitnessMonoid {
    /// Creates the monoid for budget cap `θ`.
    pub fn new(cap: usize) -> Self {
        BagMaxWitnessMonoid { cap }
    }

    fn len(&self) -> usize {
        self.cap + 1
    }

    /// The `★` annotation for the repair fact with id `fact`.
    pub fn star(&self, fact: u32) -> WitnessVec {
        let mut v = Vec::with_capacity(self.len());
        v.push(WitnessEntry {
            value: 0,
            facts: Vec::new(),
        });
        for _ in 1..self.len() {
            v.push(WitnessEntry {
                value: 1,
                facts: vec![fact],
            });
        }
        WitnessVec(v)
    }

    /// Deterministic preference between equal-value candidates:
    /// fewer facts first, then lexicographically smaller.
    fn better(candidate: &(u64, Vec<u32>), incumbent: &Option<(u64, Vec<u32>)>) -> bool {
        match incumbent {
            None => true,
            Some(inc) => {
                candidate.0 > inc.0
                    || (candidate.0 == inc.0
                        && (candidate.1.len(), &candidate.1) < (inc.1.len(), &inc.1))
            }
        }
    }

    fn convolve(&self, a: &WitnessVec, b: &WitnessVec, f: impl Fn(u64, u64) -> u64) -> WitnessVec {
        debug_assert_eq!(a.len(), self.len());
        debug_assert_eq!(b.len(), self.len());
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut best: Option<(u64, Vec<u32>)> = None;
            for i1 in 0..=i {
                let (ea, eb) = (&a.0[i1], &b.0[i - i1]);
                let value = f(ea.value, eb.value);
                let candidate = (value, merge_facts(&ea.facts, &eb.facts));
                if Self::better(&candidate, &best) {
                    best = Some(candidate);
                }
            }
            let (value, facts) = best.expect("at least one split exists");
            out.push(WitnessEntry { value, facts });
        }
        WitnessVec(out)
    }
}

impl TwoMonoid for BagMaxWitnessMonoid {
    type Elem = WitnessVec;

    fn zero(&self) -> WitnessVec {
        WitnessVec(vec![
            WitnessEntry {
                value: 0,
                facts: Vec::new()
            };
            self.len()
        ])
    }

    fn one(&self) -> WitnessVec {
        WitnessVec(vec![
            WitnessEntry {
                value: 1,
                facts: Vec::new()
            };
            self.len()
        ])
    }

    fn add(&self, a: &WitnessVec, b: &WitnessVec) -> WitnessVec {
        self.convolve(a, b, |x, y| x.saturating_add(y))
    }

    fn mul(&self, a: &WitnessVec, b: &WitnessVec) -> WitnessVec {
        self.convolve(a, b, |x, y| x.saturating_mul(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bagmax::BagMaxMonoid;

    fn m() -> BagMaxWitnessMonoid {
        BagMaxWitnessMonoid::new(3)
    }

    #[test]
    fn identities_carry_empty_witnesses() {
        let m = m();
        assert!(m
            .zero()
            .0
            .iter()
            .all(|e| e.value == 0 && e.facts.is_empty()));
        assert!(m.one().0.iter().all(|e| e.value == 1 && e.facts.is_empty()));
    }

    #[test]
    fn star_records_its_fact() {
        let m = m();
        let s = m.star(7);
        assert_eq!(s.value_at(0), 0);
        assert_eq!(s.value_at(1), 1);
        assert_eq!(s.facts_at(1), &[7]);
        assert_eq!(s.facts_at(0), &[] as &[u32]);
    }

    #[test]
    fn values_match_plain_bagmax() {
        // The value component must equal the witness-free monoid on
        // matched expressions.
        let wm = m();
        let vm = BagMaxMonoid::new(3);
        let w_expr = wm.mul(
            &wm.add(&wm.star(0), &wm.add(&wm.star(1), &wm.one())),
            &wm.add(&wm.star(2), &wm.one()),
        );
        let v_expr = vm.mul(
            &vm.add(&vm.star(), &vm.add(&vm.star(), &vm.one())),
            &vm.add(&vm.star(), &vm.one()),
        );
        assert_eq!(w_expr.values(), v_expr.as_slice());
    }

    #[test]
    fn witnesses_respect_budget() {
        let m = m();
        let expr = m.mul(
            &m.add(&m.star(0), &m.star(1)),
            &m.add(&m.star(2), &m.star(3)),
        );
        for i in 0..expr.len() {
            assert!(
                expr.facts_at(i).len() <= i,
                "budget {i}: {:?}",
                expr.facts_at(i)
            );
        }
    }

    #[test]
    fn conjunction_witness_needs_both_sides() {
        // star(0) ⊗ star(1): value 1 needs budget 2 and both facts.
        let m = m();
        let p = m.mul(&m.star(0), &m.star(1));
        assert_eq!(p.value_at(1), 0);
        assert_eq!(p.value_at(2), 1);
        assert_eq!(p.facts_at(2), &[0, 1]);
    }

    #[test]
    fn tie_break_prefers_fewer_then_smaller() {
        // one ⊕ star(5): at budget 1, value 2 needs the star; at equal
        // value, the smaller witness wins.
        let m = m();
        let s = m.add(&m.one(), &m.star(5));
        assert_eq!(s.value_at(0), 1);
        assert_eq!(s.value_at(1), 2);
        assert_eq!(s.facts_at(1), &[5]);
        // star(3) ⊕ star(9) at budget 1: both give value 1; prefer [3].
        let t = m.add(&m.star(3), &m.star(9));
        assert_eq!(t.facts_at(1), &[3]);
    }

    #[test]
    fn commutativity_with_tie_breaking() {
        let m = m();
        let a = m.add(&m.star(3), &m.one());
        let b = m.mul(&m.star(1), &m.add(&m.star(2), &m.one()));
        assert_eq!(m.add(&a, &b), m.add(&b, &a));
        assert_eq!(m.mul(&a, &b), m.mul(&b, &a));
    }

    #[test]
    fn value_component_laws_hold() {
        // Identity/commutativity on values via the law checker, using
        // value-only equality (witness ties may differ across
        // associations; values may not).
        use crate::laws::check_laws;
        let m = m();
        let sample = vec![
            m.zero(),
            m.one(),
            m.star(0),
            m.star(1),
            m.add(&m.star(0), &m.one()),
            m.mul(&m.star(1), &m.star(2)),
        ];
        let report = check_laws(&m, &sample, |a, b| a.values() == b.values());
        assert!(report.all_hold(), "{report:?}");
    }
}
