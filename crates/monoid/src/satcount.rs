//! The `#Sat` counting 2-monoid for Shapley values (Definition 5.14).
//!
//! Carrier: vectors `x ∈ ℕ^(ℕ×𝔹)` where `x(k, b)` counts size-`k`
//! subsets of the endogenous facts making the (sub)formula evaluate to
//! `b`. The operators are counting convolutions (Eqs. (15)–(16)):
//!
//! ```text
//! (x ⊕ y)(i, b) = Σ_{i₁+i₂=i} Σ_{b₁∨b₂=b} x(i₁,b₁) · y(i₂,b₂)
//! (x ⊗ y)(i, b) = Σ_{i₁+i₂=i} Σ_{b₁∧b₂=b} x(i₁,b₁) · y(i₂,b₂)
//! ```
//!
//! This monoid famously violates annihilation-by-zero: `a ⊗ 0 ≠ 0` —
//! a conjunction with a false sub-formula is never satisfied, but its
//! subsets still have to be *counted*. It satisfies the weaker
//! `0 ⊗ 0 = 0` required by Definition 5.6, which is exactly what keeps
//! supports from growing in the unifying algorithm (Lemma 6.6).
//!
//! Counts are exact [`Natural`]s (they reach `C(n, n/2)`), truncated at
//! `max_k + 1 = |D_n| + 1` entries; each operation is `O(|D_n|²)`
//! [`Natural`]-multiplications, giving Theorem 5.16's runtime.

use crate::traits::TwoMonoid;
use hq_arith::Natural;
use std::fmt;

/// A truncated `#Sat` vector: `t[k]` counts size-`k` endogenous subsets
/// making the formula true, `f[k]` those making it false.
#[derive(Clone, PartialEq, Eq)]
pub struct SatVec {
    /// Counts for `b = true`.
    pub t: Vec<Natural>,
    /// Counts for `b = false`.
    pub f: Vec<Natural>,
}

impl SatVec {
    /// `x(k, true)`.
    pub fn true_count(&self, k: usize) -> &Natural {
        &self.t[k]
    }

    /// `x(k, false)`.
    pub fn false_count(&self, k: usize) -> &Natural {
        &self.f[k]
    }

    /// `x(k, true) + x(k, false)` — for a formula over `n` endogenous
    /// facts this must equal `C(n, k)`, a completeness invariant the
    /// property tests enforce.
    pub fn total(&self, k: usize) -> Natural {
        &self.t[k] + &self.f[k]
    }

    /// Number of stored budget entries (`max_k + 1`).
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the vector stores no entries.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }
}

impl fmt::Debug for SatVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t: Vec<String> = self.t.iter().map(|n| n.to_string()).collect();
        let fv: Vec<String> = self.f.iter().map(|n| n.to_string()).collect();
        write!(f, "SatVec{{t:[{}], f:[{}]}}", t.join(","), fv.join(","))
    }
}

/// The `#Sat` 2-monoid truncated at subset size `max_k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCountMonoid {
    /// Largest subset size tracked (use `|D_n|`).
    pub max_k: usize,
}

impl SatCountMonoid {
    /// Creates the monoid tracking subset sizes `0..=max_k`.
    pub fn new(max_k: usize) -> Self {
        SatCountMonoid { max_k }
    }

    fn len(&self) -> usize {
        self.max_k + 1
    }

    fn zeros(&self) -> Vec<Natural> {
        vec![Natural::zero(); self.len()]
    }

    /// The `★` vector of Definition 5.15: an endogenous fact — absent
    /// (false) as a size-0 choice, present (true) as a size-1 choice.
    pub fn star(&self) -> SatVec {
        let mut t = self.zeros();
        let mut f = self.zeros();
        f[0] = Natural::one();
        if self.max_k >= 1 {
            t[1] = Natural::one();
        }
        SatVec { t, f }
    }

    /// Truncated counting convolution `Σ_{i₁+i₂=i} a(i₁)·b(i₂)`.
    fn convolve(&self, a: &[Natural], b: &[Natural]) -> Vec<Natural> {
        let n = self.len();
        let mut out = vec![Natural::zero(); n];
        for (i1, av) in a.iter().enumerate() {
            if av.is_zero() {
                continue;
            }
            for (i2, bv) in b.iter().enumerate() {
                if i1 + i2 >= n {
                    break;
                }
                if bv.is_zero() {
                    continue;
                }
                out[i1 + i2].add_assign_ref(&av.mul_ref(bv));
            }
        }
        out
    }

    fn vec_add(mut a: Vec<Natural>, b: Vec<Natural>) -> Vec<Natural> {
        for (x, y) in a.iter_mut().zip(b) {
            x.add_assign_ref(&y);
        }
        a
    }
}

impl TwoMonoid for SatCountMonoid {
    type Elem = SatVec;

    /// `0(i, b) = 1` iff `i = 0 ∧ b = false` — "the empty formula that
    /// is false", contributing nothing to any disjunction.
    fn zero(&self) -> SatVec {
        let t = self.zeros();
        let mut f = self.zeros();
        f[0] = Natural::one();
        SatVec { t, f }
    }

    /// `1(i, b) = 1` iff `i = 0 ∧ b = true` — an exogenous fact.
    fn one(&self) -> SatVec {
        let mut t = self.zeros();
        let f = self.zeros();
        t[0] = Natural::one();
        SatVec { t, f }
    }

    /// Eq. (15): disjunction convolution. `b₁ ∨ b₂ = true` for the
    /// pairs (t,t), (t,f), (f,t); `false` only for (f,f).
    fn add(&self, a: &SatVec, b: &SatVec) -> SatVec {
        let tt = self.convolve(&a.t, &b.t);
        let tf = self.convolve(&a.t, &b.f);
        let ft = self.convolve(&a.f, &b.t);
        let t = Self::vec_add(Self::vec_add(tt, tf), ft);
        let f = self.convolve(&a.f, &b.f);
        SatVec { t, f }
    }

    /// Eq. (16): conjunction convolution. `b₁ ∧ b₂ = true` only for
    /// (t,t); `false` for (f,f), (f,t), (t,f).
    fn mul(&self, a: &SatVec, b: &SatVec) -> SatVec {
        let t = self.convolve(&a.t, &b.t);
        let ff = self.convolve(&a.f, &b.f);
        let ft = self.convolve(&a.f, &b.t);
        let tf = self.convolve(&a.t, &b.f);
        let f = Self::vec_add(Self::vec_add(ff, ft), tf);
        SatVec { t, f }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{annihilation_counterexample, check_laws, distributivity_counterexample};
    use hq_arith::binomial;

    fn m() -> SatCountMonoid {
        SatCountMonoid::new(4)
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    fn sample() -> Vec<SatVec> {
        let m = m();
        let s2 = m.add(&m.star(), &m.star()); // two endogenous facts or-ed
        let p2 = m.mul(&m.star(), &m.star()); // two endogenous facts and-ed
        vec![m.zero(), m.one(), m.star(), s2, p2]
    }

    #[test]
    fn identities_shape() {
        let m = m();
        let zero = m.zero();
        assert_eq!(zero.f[0], nat(1));
        assert!(zero.t.iter().all(Natural::is_zero));
        let one = m.one();
        assert_eq!(one.t[0], nat(1));
        assert!(one.f.iter().all(Natural::is_zero));
        let star = m.star();
        assert_eq!(star.f[0], nat(1));
        assert_eq!(star.t[1], nat(1));
    }

    #[test]
    fn laws_hold() {
        let report = check_laws(&m(), &sample(), |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn violates_annihilation_but_not_zero_mul_zero() {
        let m = m();
        // a ⊗ 0 ≠ 0 for a = star: the conjunction is never true, but
        // subsets {∅, {f}} are still counted on the false side.
        let sample = sample();
        let w = annihilation_counterexample(&m, &sample, |a, b| a == b);
        assert!(w.is_some(), "Shapley monoid must violate annihilation");
        // Yet 0 ⊗ 0 = 0 (Definition 5.6's weaker requirement).
        assert_eq!(m.mul(&m.zero(), &m.zero()), m.zero());
    }

    #[test]
    fn not_distributive() {
        let sample = sample();
        let w = distributivity_counterexample(&m(), &sample, |a, b| a == b);
        assert!(w.is_some(), "Shapley monoid must not be distributive");
    }

    #[test]
    fn star_conjunction_counts_subsets() {
        // F = f1 ∧ f2 over endogenous {f1, f2}:
        // k=0: {} → false (1 way). k=1: {f1},{f2} → false (2 ways).
        // k=2: {f1,f2} → true (1 way).
        let m = m();
        let v = m.mul(&m.star(), &m.star());
        assert_eq!(v.f[0], nat(1));
        assert_eq!(v.f[1], nat(2));
        assert_eq!(v.t[2], nat(1));
        assert_eq!(v.t[0], nat(0));
        assert_eq!(v.t[1], nat(0));
    }

    #[test]
    fn star_disjunction_counts_subsets() {
        // F = f1 ∨ f2: k=1 → both singletons true; k=2 → true.
        let m = m();
        let v = m.add(&m.star(), &m.star());
        assert_eq!(v.f[0], nat(1));
        assert_eq!(v.t[1], nat(2));
        assert_eq!(v.f[1], nat(0));
        assert_eq!(v.t[2], nat(1));
    }

    #[test]
    fn totals_are_binomials() {
        // Or-ing / and-ing n distinct endogenous facts must yield
        // total(k) = C(n, k): every subset is counted exactly once.
        let m = SatCountMonoid::new(6);
        for n in 0..=6usize {
            let stars: Vec<SatVec> = (0..n).map(|_| m.star()).collect();
            for v in [m.sum(&stars), m.product(&stars)] {
                for k in 0..=6usize {
                    assert_eq!(v.total(k), binomial(n as u64, k as u64), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn exogenous_fact_is_transparent() {
        // 1 ⊗ x = x and mixing 1 into a disjunction makes it always true.
        let m = m();
        let x = m.add(&m.star(), &m.star());
        assert_eq!(m.mul(&m.one(), &x), x);
        let always = m.add(&m.one(), &m.star());
        // Formula true regardless of the single endogenous fact:
        assert_eq!(always.t[0], nat(1));
        assert_eq!(always.t[1], nat(1));
        assert!(always.f.iter().all(Natural::is_zero));
    }

    #[test]
    fn truncation_is_exact_prefix() {
        // Computing with a larger cap and truncating equals computing
        // with the smaller cap directly.
        let big = SatCountMonoid::new(8);
        let small = SatCountMonoid::new(3);
        let vb = big.mul(
            &big.add(&big.star(), &big.star()),
            &big.add(&big.star(), &big.one()),
        );
        let vs = small.mul(
            &small.add(&small.star(), &small.star()),
            &small.add(&small.star(), &small.one()),
        );
        assert_eq!(&vb.t[..4], &vs.t[..]);
        assert_eq!(&vb.f[..4], &vs.f[..]);
    }
}
