//! The universal provenance 2-monoid (Definition 6.2).
//!
//! Elements are ∧/∨ provenance trees over uniquely-labelled fact
//! symbols. Children are kept as *sorted* vectors (commutativity) and
//! same-operator parent/child nodes are merged (associativity), exactly
//! as the paper prescribes. The ⊕-identity is the single `false` leaf
//! and the ⊗-identity the single `true` leaf; the only simplifications
//! performed are the identity laws themselves (drop `false` under ∨,
//! drop `true` under ∧) plus `false ⊗ false = false` — *no absorption*,
//! because 2-monoids do not annihilate by zero (the Shapley
//! homomorphism depends on `x ⊗ 0` keeping `x`'s leaves!).
//!
//! The provenance monoid is the engine of the generic correctness proof
//! (Theorem 6.4): running Algorithm 1 over it and then applying a
//! problem's homomorphism `φ` must equal running the algorithm over the
//! problem monoid directly. Our cross-crate property tests execute
//! that theorem literally.

use crate::traits::TwoMonoid;
use std::collections::BTreeSet;
use std::fmt;

/// A provenance tree over fact symbols (`u64` leaf labels).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prov {
    /// The constant-false leaf (⊕-identity `0̄`).
    False,
    /// The constant-true leaf (⊗-identity `1̄`).
    True,
    /// A fact symbol from Σ.
    Leaf(u64),
    /// A disjunction node (children sorted, ≥ 2 of them).
    Or(Vec<Prov>),
    /// A conjunction node (children sorted, ≥ 2 of them).
    And(Vec<Prov>),
}

impl Prov {
    /// The support: all fact symbols at the leaves (excluding
    /// `true`/`false`), per Definition 6.1.
    pub fn support(&self) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        self.collect_support(&mut out);
        out
    }

    fn collect_support(&self, out: &mut BTreeSet<u64>) {
        match self {
            Prov::False | Prov::True => {}
            Prov::Leaf(s) => {
                out.insert(*s);
            }
            Prov::Or(cs) | Prov::And(cs) => {
                for c in cs {
                    c.collect_support(out);
                }
            }
        }
    }

    /// Whether the tree is *decomposable*: all fact-symbol leaves carry
    /// distinct labels (Definition 6.1).
    ///
    /// Deviation from the paper's phrasing: Definition 6.1 also asks
    /// for distinct `true`/`false` labels, under footnote 8's
    /// assumption that constants are always simplified away. Our trees
    /// deliberately keep `x ⊗ 0` unsimplified (the Shapley
    /// homomorphism needs `x`'s support preserved), so a `⊥` may
    /// appear in several *disjoint* branches; that multiplicity is
    /// harmless — every homomorphism `φ` of Theorem 6.4 maps each
    /// branch independently, and constants carry no support.
    pub fn is_decomposable(&self) -> bool {
        let mut syms = BTreeSet::new();
        self.distinct_symbols(&mut syms)
    }

    fn distinct_symbols(&self, syms: &mut BTreeSet<u64>) -> bool {
        match self {
            Prov::True | Prov::False => true,
            Prov::Leaf(s) => syms.insert(*s),
            Prov::Or(cs) | Prov::And(cs) => cs.iter().all(|c| c.distinct_symbols(syms)),
        }
    }

    /// Evaluates the corresponding Boolean formula `F_x`, with each
    /// leaf's truth value supplied by `leaf`.
    pub fn eval_bool(&self, leaf: &impl Fn(u64) -> bool) -> bool {
        match self {
            Prov::False => false,
            Prov::True => true,
            Prov::Leaf(s) => leaf(*s),
            Prov::Or(cs) => cs.iter().any(|c| c.eval_bool(leaf)),
            Prov::And(cs) => cs.iter().all(|c| c.eval_bool(leaf)),
        }
    }

    /// Evaluates the bag-set *multiplicity* of the formula: leaves
    /// carry multiplicities, ∨ adds, ∧ multiplies. For decomposable
    /// trees produced by the algorithm this is exactly the number of
    /// satisfying assignments contributed.
    pub fn multiplicity(&self, leaf: &impl Fn(u64) -> u64) -> u64 {
        match self {
            Prov::False => 0,
            Prov::True => 1,
            Prov::Leaf(s) => leaf(*s),
            Prov::Or(cs) => cs.iter().map(|c| c.multiplicity(leaf)).sum(),
            Prov::And(cs) => cs.iter().map(|c| c.multiplicity(leaf)).product(),
        }
    }

    /// Number of nodes (for size diagnostics).
    pub fn node_count(&self) -> usize {
        match self {
            Prov::False | Prov::True | Prov::Leaf(_) => 1,
            Prov::Or(cs) | Prov::And(cs) => 1 + cs.iter().map(Prov::node_count).sum::<usize>(),
        }
    }
}

impl fmt::Display for Prov {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prov::False => write!(f, "⊥"),
            Prov::True => write!(f, "⊤"),
            Prov::Leaf(s) => write!(f, "f{s}"),
            Prov::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Prov::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Flattens `x` into `out` if it is the same operator kind (`or` =
/// true for Or), otherwise pushes it whole.
fn flatten_into(x: Prov, or: bool, out: &mut Vec<Prov>) {
    match (or, x) {
        (true, Prov::Or(cs)) => out.extend(cs),
        (false, Prov::And(cs)) => out.extend(cs),
        (_, other) => out.push(other),
    }
}

/// The provenance 2-monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvMonoid;

impl TwoMonoid for ProvMonoid {
    type Elem = Prov;

    fn zero(&self) -> Prov {
        Prov::False
    }

    fn one(&self) -> Prov {
        Prov::True
    }

    /// Builds the ∨-node of `a` and `b`, merging same-labelled
    /// children and dropping `false` (the identity law).
    fn add(&self, a: &Prov, b: &Prov) -> Prov {
        match (a, b) {
            (Prov::False, x) | (x, Prov::False) => x.clone(),
            _ => {
                let mut children = Vec::new();
                flatten_into(a.clone(), true, &mut children);
                flatten_into(b.clone(), true, &mut children);
                children.sort();
                Prov::Or(children)
            }
        }
    }

    /// Builds the ∧-node of `a` and `b`, merging same-labelled
    /// children and dropping `true`; duplicate `false` children are
    /// collapsed to one — sound because every 2-monoid satisfies
    /// `0 ⊗ 0 = 0` (Definition 5.6), and required for structural
    /// associativity. **No absorption**: `x ∧ ⊥` keeps `x` (the Shapley
    /// monoid needs its support).
    fn mul(&self, a: &Prov, b: &Prov) -> Prov {
        match (a, b) {
            (Prov::True, x) | (x, Prov::True) => x.clone(),
            _ => {
                let mut children = Vec::new();
                flatten_into(a.clone(), false, &mut children);
                flatten_into(b.clone(), false, &mut children);
                children.sort();
                // Children are sorted, so duplicate `False`s (which sort
                // first) are adjacent at the front; keep at most one.
                let mut falses = 0;
                children.retain(|c| {
                    if *c == Prov::False {
                        falses += 1;
                        falses == 1
                    } else {
                        true
                    }
                });
                if children.len() == 1 {
                    children.pop().expect("len checked")
                } else {
                    Prov::And(children)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_laws;

    fn leaf(s: u64) -> Prov {
        Prov::Leaf(s)
    }

    fn sample() -> Vec<Prov> {
        let m = ProvMonoid;
        vec![
            Prov::False,
            Prov::True,
            leaf(1),
            leaf(2),
            m.add(&leaf(3), &leaf(4)),
            m.mul(&leaf(5), &leaf(6)),
            m.mul(&leaf(7), &m.add(&leaf(8), &leaf(9))),
        ]
    }

    #[test]
    fn laws_hold_structurally() {
        let report = check_laws(&ProvMonoid, &sample(), |a, b| a == b);
        assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn commutativity_via_sorted_children() {
        let m = ProvMonoid;
        assert_eq!(m.add(&leaf(2), &leaf(1)), m.add(&leaf(1), &leaf(2)));
        assert_eq!(m.mul(&leaf(9), &leaf(3)), m.mul(&leaf(3), &leaf(9)));
    }

    #[test]
    fn associativity_via_flattening() {
        let m = ProvMonoid;
        let lhs = m.add(&m.add(&leaf(1), &leaf(2)), &leaf(3));
        let rhs = m.add(&leaf(1), &m.add(&leaf(2), &leaf(3)));
        assert_eq!(lhs, rhs);
        assert_eq!(lhs, Prov::Or(vec![leaf(1), leaf(2), leaf(3)]));
    }

    #[test]
    fn no_absorption_by_false_under_and() {
        // x ⊗ ⊥ must keep x's leaves (the Shapley homomorphism relies
        // on the support being preserved).
        let m = ProvMonoid;
        let r = m.mul(&leaf(1), &Prov::False);
        assert_eq!(r, Prov::And(vec![Prov::False, leaf(1)]));
        assert_eq!(r.support().into_iter().collect::<Vec<_>>(), vec![1]);
        // But 0 ⊗ 0 = 0 holds.
        assert_eq!(m.mul(&Prov::False, &Prov::False), Prov::False);
    }

    #[test]
    fn false_chains_stay_associative() {
        // (0 ⊗ 0) ⊗ x vs 0 ⊗ (0 ⊗ x): the duplicate-⊥ collapse keeps
        // these structurally equal (0 ⊗ 0 = 0 in every 2-monoid).
        let m = ProvMonoid;
        let lhs = m.mul(&m.mul(&Prov::False, &Prov::False), &leaf(1));
        let rhs = m.mul(&Prov::False, &m.mul(&Prov::False, &leaf(1)));
        assert_eq!(lhs, rhs);
        assert_eq!(lhs, Prov::And(vec![Prov::False, leaf(1)]));
        assert_eq!(m.mul(&Prov::False, &Prov::False), Prov::False);
    }

    #[test]
    fn no_absorption_by_true_under_or() {
        // x ⊕ ⊤ keeps x (needed when exogenous facts join a
        // disjunction in the Shapley instantiation).
        let m = ProvMonoid;
        let r = m.add(&leaf(1), &Prov::True);
        assert_eq!(r, Prov::Or(vec![Prov::True, leaf(1)]));
    }

    #[test]
    fn support_and_decomposability() {
        let m = ProvMonoid;
        let x = m.mul(&leaf(1), &m.add(&leaf(2), &leaf(3)));
        assert_eq!(x.support().into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(x.is_decomposable());
        let dup = m.add(&leaf(1), &m.mul(&leaf(1), &leaf(2)));
        assert!(!dup.is_decomposable());
    }

    #[test]
    fn eval_bool_matches_formula() {
        let m = ProvMonoid;
        let x = m.mul(&leaf(1), &m.add(&leaf(2), &leaf(3)));
        // f1 ∧ (f2 ∨ f3)
        assert!(x.eval_bool(&|s| s == 1 || s == 2));
        assert!(!x.eval_bool(&|s| s == 2 || s == 3));
        assert!(!x.eval_bool(&|s| s == 1));
        assert!(Prov::True.eval_bool(&|_| false));
        assert!(!Prov::False.eval_bool(&|_| true));
    }

    #[test]
    fn multiplicity_sums_and_multiplies() {
        let m = ProvMonoid;
        // (f1 ∨ f2) ∧ (f3 ∨ f4) with all multiplicities 1 → 2 * 2 = 4.
        let x = m.mul(&m.add(&leaf(1), &leaf(2)), &m.add(&leaf(3), &leaf(4)));
        assert_eq!(x.multiplicity(&|_| 1), 4);
        assert_eq!(x.multiplicity(&|s| if s == 1 { 0 } else { 1 }), 2);
        assert_eq!(Prov::True.multiplicity(&|_| 0), 1);
        assert_eq!(Prov::False.multiplicity(&|_| 7), 0);
    }

    #[test]
    fn display_round_trips_structure() {
        let m = ProvMonoid;
        let x = m.mul(&leaf(1), &m.add(&leaf(2), &leaf(3)));
        assert_eq!(x.to_string(), "(f1 ∧ (f2 ∨ f3))");
    }

    #[test]
    fn node_count() {
        let m = ProvMonoid;
        let x = m.mul(&leaf(1), &m.add(&leaf(2), &leaf(3)));
        assert_eq!(x.node_count(), 5);
    }
}
