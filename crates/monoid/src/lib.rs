//! # hq-monoid — 2-monoids and their instantiations
//!
//! The algebraic core of *A Unifying Algorithm for Hierarchical
//! Queries* (PODS 2025): the [`TwoMonoid`] abstraction
//! (Definition 5.6) and every instantiation the paper uses —
//!
//! * [`prob::ProbMonoid`] / [`prob::ExactProbMonoid`] — Probabilistic
//!   Query Evaluation (Definition 5.7);
//! * [`bagmax::BagMaxMonoid`] — Bag-Set Maximization via max-plus /
//!   max-times convolutions of budget vectors (Definition 5.9);
//! * [`satcount::SatCountMonoid`] — `#Sat` counting vectors for Shapley
//!   values (Definition 5.14);
//! * [`provenance::ProvMonoid`] — the universal provenance 2-monoid of
//!   the generic correctness proof (Definition 6.2);
//! * [`semirings`] — classical Boolean / counting / tropical semirings,
//!   showing the framework subsumes semiring evaluation.
//!
//! The [`laws`] module provides the executable algebra: law checkers
//! plus distributivity/annihilation counterexample search — the paper's
//! "none of these are semirings" remarks, made testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bagmax;
pub mod bagmax_witness;
pub mod laws;
pub mod prob;
pub mod provenance;
pub mod satcount;
pub mod semirings;
pub mod traits;

pub use bagmax::{BagMaxMonoid, BudgetVec};
pub use bagmax_witness::{BagMaxWitnessMonoid, WitnessEntry, WitnessVec};
pub use prob::{ExactProbMonoid, ProbMonoid};
pub use provenance::{Prov, ProvMonoid};
pub use satcount::{SatCountMonoid, SatVec};
pub use semirings::{BoolMonoid, CountMonoid, RealSemiring, TropicalMinMonoid, TROPICAL_INF};
pub use traits::{DenseFold, Semiring, TwoMonoid};
