//! The 2-monoid abstraction (Definition 5.6 of the paper).
//!
//! A 2-monoid `K = (K, ⊕, ⊗)` consists of two commutative monoids over
//! the same carrier, with identities `0` and `1`, satisfying the single
//! interaction law `0 ⊗ 0 = 0`. Crucially it is **not** required to be
//! distributive, and none of the paper's three problem instantiations
//! are — that is exactly what limits the unifying algorithm to
//! hierarchical (rather than all acyclic) queries.
//!
//! The trait is *instance-based* (`&self` on every operation) because
//! two of the paper's monoids carry runtime context: the Bag-Set
//! Maximization monoid truncates its budget vectors at `θ + 1` entries
//! and the `#Sat` monoid at `|D_n| + 1` — the truncations that yield the
//! complexity bounds of Theorems 5.11 and 5.16.

use std::fmt::Debug;

/// A commutative 2-monoid (Definition 5.6).
///
/// Implementations must guarantee, for all `a`, `b`, `c`:
///
/// * `add`/`mul` are associative and commutative;
/// * `add(a, zero()) == a` and `mul(a, one()) == a`;
/// * `mul(zero(), zero()) == zero()`.
///
/// They need **not** satisfy distributivity or annihilation-by-zero.
/// The [`crate::laws`] module provides generic checkers used by every
/// instantiation's property tests.
///
/// Monoids are shared by reference across shard workers (`Sync`),
/// cloned into tasks submitted to the persistent worker pool
/// (`Clone + Send + 'static`), and carrier values move between threads
/// (`Elem: Send + 'static`) in the engine's parallel execution mode;
/// every instantiation is a plain owned value with no interior
/// mutability, so the bounds are free.
pub trait TwoMonoid: Clone + Send + Sync + 'static {
    /// The carrier type `K`.
    type Elem: Clone + PartialEq + Debug + Send + Sync + 'static;

    /// The ⊕-identity `0`.
    fn zero(&self) -> Self::Elem;

    /// The ⊗-identity `1`.
    fn one(&self) -> Self::Elem;

    /// The commutative-monoid operation ⊕.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// The commutative-monoid operation ⊗.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// In-place `acc = acc ⊕ b` — the fold form of [`TwoMonoid::add`].
    ///
    /// Semantically identical to `*acc = self.add(acc, b)` (the
    /// default); heap-carried monoids override it to reuse `acc`'s
    /// allocation on the engine's grouped-fold hot path.
    fn add_assign(&self, acc: &mut Self::Elem, b: &Self::Elem) {
        *acc = self.add(acc, b);
    }

    /// In-place ⊕-fold of a dense run: `acc = acc ⊕ run[0] ⊕ run[1] ⊕ …`,
    /// combining strictly left to right.
    ///
    /// The default loops [`TwoMonoid::add_assign`], so it is
    /// *definitionally* bit-identical to the engine's one-at-a-time
    /// grouped fold. Monoids whose ⊕ is a branch-free scalar operation
    /// ([`crate::prob::ProbMonoid`], [`crate::semirings::CountMonoid`],
    /// [`crate::semirings::RealSemiring`]) override it via
    /// [`DenseFold`] with a tight slice loop the compiler can unroll
    /// and auto-vectorise where the operation allows — executing the
    /// *same* per-element expression in the *same* order, so values
    /// and op counts never diverge from the generic path.
    fn fold_assign(&self, acc: &mut Self::Elem, run: &[Self::Elem]) {
        for x in run {
            self.add_assign(acc, x);
        }
    }

    /// Whether `a` is (semantically) the ⊕-identity `0` — the support
    /// predicate every storage backend uses for pruning.
    ///
    /// The default is structural equality with [`TwoMonoid::zero`].
    /// Carriers with non-trivial equality (IEEE-754 floats: `-0.0`,
    /// `NaN`) must override this so that *all* backends agree on what
    /// counts as absent; see [`crate::prob::ProbMonoid::is_zero`].
    fn is_zero(&self, a: &Self::Elem) -> bool {
        *a == self.zero()
    }

    /// Whether `0` annihilates under ⊗ (`a ⊗ 0 = 0` for every `a`).
    ///
    /// 2-monoids do not require this (the Shapley `#Sat` monoid
    /// violates it: `⋆ ⊗ 0 ≠ 0`), but every semiring instantiation
    /// satisfies it. The BSM monoid happens to satisfy the law too
    /// (`x ⊗ 0̄` is the all-zeros vector) yet deliberately keeps the
    /// default `false` so its ⊗ counts stay on the Theorem 5.11 curve. The
    /// engine uses it in Rule 2 to skip the ⊗ against an absent side
    /// entirely — the result is `0` and would be pruned anyway — which
    /// keeps engine operation counts aligned with the Theorem 6.7
    /// accounting for semirings.
    ///
    /// Override to `true` **only** when `mul(a, zero()) == zero()`
    /// holds for the whole carrier; the law checkers in
    /// [`crate::laws`] verify consistency.
    fn annihilating(&self) -> bool {
        false
    }

    /// Whether a semi-naive fixpoint over this monoid is guaranteed to
    /// terminate — i.e. whether `0` truly annihilates under ⊗ so that
    /// tuples absent from a delta contribute nothing to the next round
    /// and the round-stratified accumulator converges on the finite
    /// active domain.
    ///
    /// This is a *semantic* property, deliberately separate from
    /// [`TwoMonoid::annihilating`] (which doubles as an op-counting
    /// knob): the BSM monoid keeps `annihilating() = false` to stay on
    /// the Theorem 5.11 ⊗-count curve yet satisfies the annihilation
    /// law, so it overrides this to `true` and participates in
    /// fixpoints. The Shapley `#Sat` monoid genuinely violates the law
    /// (`⋆ ⊗ 0 ≠ 0`) and keeps the default `false`: the engine rejects
    /// a fixpoint over it as a validation error rather than hanging.
    fn fixpoint_convergent(&self) -> bool {
        self.annihilating()
    }

    /// Folds ⊕ over an iterator (`0` for an empty iterator).
    fn sum<'a, I>(&self, items: I) -> Self::Elem
    where
        Self::Elem: 'a,
        I: IntoIterator<Item = &'a Self::Elem>,
    {
        let mut acc = self.zero();
        for x in items {
            acc = self.add(&acc, x);
        }
        acc
    }

    /// Folds ⊗ over an iterator (`1` for an empty iterator).
    fn product<'a, I>(&self, items: I) -> Self::Elem
    where
        Self::Elem: 'a,
        I: IntoIterator<Item = &'a Self::Elem>,
    {
        let mut acc = self.one();
        for x in items {
            acc = self.mul(&acc, x);
        }
        acc
    }
}

/// A 2-monoid whose ⊕ admits a dense SIMD-friendly fast path.
///
/// `fold_dense` must compute exactly the same value, in exactly the
/// same element order, as the default [`TwoMonoid::fold_assign`] loop —
/// it exists only to present the fold to the compiler as a tight loop
/// over a contiguous slice of scalar carriers (no `Option` group
/// state, no per-element prefix comparison), which is what lets LLVM
/// unroll and, where the operation permits, vectorise it. Implementors
/// also override [`TwoMonoid::fold_assign`] to delegate here, so every
/// engine kernel picks the fast path up without a specialised call
/// site. Heap-carried monoids (`BagMax`, `#Sat`, provenance) keep the
/// generic path.
///
/// The equivalence `fold_dense ≡ fold_assign`-default is pinned by
/// property tests in each implementing module.
pub trait DenseFold: TwoMonoid {
    /// Dense in-place ⊕-fold; must be element-for-element identical to
    /// the default [`TwoMonoid::fold_assign`].
    fn fold_dense(&self, acc: &mut Self::Elem, run: &[Self::Elem]);
}

/// Marker-style helper: a 2-monoid that *is* a commutative semiring
/// (distributive, zero-annihilating). The classical semiring
/// instantiations (Boolean, counting, tropical) implement this; the
/// three problem monoids deliberately do not.
pub trait Semiring: TwoMonoid {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 2-monoid over (u32, max, +) for exercising the defaults.
    #[derive(Clone)]
    struct MaxPlus;
    impl TwoMonoid for MaxPlus {
        type Elem = u32;
        fn zero(&self) -> u32 {
            0
        }
        fn one(&self) -> u32 {
            0
        }
        fn add(&self, a: &u32, b: &u32) -> u32 {
            *a.max(b)
        }
        fn mul(&self, a: &u32, b: &u32) -> u32 {
            a + b
        }
    }

    #[test]
    fn fold_assign_default_matches_add_assign_loop() {
        let m = MaxPlus;
        let run = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let mut dense = 2u32;
        m.fold_assign(&mut dense, &run);
        let mut scalar = 2u32;
        for x in &run {
            m.add_assign(&mut scalar, x);
        }
        assert_eq!(dense, scalar);
        m.fold_assign(&mut dense, &[]);
        assert_eq!(dense, scalar, "empty run is a no-op");
    }

    #[test]
    fn sum_and_product_fold() {
        let m = MaxPlus;
        let xs = [3u32, 1, 4, 1, 5];
        assert_eq!(m.sum(&xs), 5);
        assert_eq!(m.product(&xs), 14);
        assert_eq!(m.sum(&[]), 0);
        assert_eq!(m.product(&[]), 0);
    }
}
