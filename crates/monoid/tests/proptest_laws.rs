//! Property tests: the Definition 5.6 laws over *random* elements of
//! every 2-monoid (the in-module tests use small fixed samples; these
//! push the same laws through arbitrary vectors and trees).

use hq_arith::Natural;
use hq_monoid::laws::check_laws;
use hq_monoid::{BagMaxMonoid, BudgetVec, Prov, ProvMonoid, SatCountMonoid, SatVec, TwoMonoid};
use proptest::prelude::*;

const CAP: usize = 4;

/// Strategy: a monotone budget vector of length CAP+1.
fn budget_vec() -> impl Strategy<Value = BudgetVec> {
    proptest::collection::vec(0u64..50, CAP + 1).prop_map(|mut v| {
        // Make monotone by prefix-max.
        for i in 1..v.len() {
            v[i] = v[i].max(v[i - 1]);
        }
        BudgetVec::from_vec(v)
    })
}

/// Strategy: a SatVec built as a random ⊕/⊗ combination of generators,
/// so every sampled element is reachable (arbitrary raw vectors need
/// not be — the carrier is the closure of the ψ annotations).
fn sat_vec() -> impl Strategy<Value = SatVec> {
    proptest::collection::vec(0u8..3, 1..5).prop_map(|ops| {
        let m = SatCountMonoid::new(CAP);
        let mut acc = m.star();
        for op in ops {
            let next = match op {
                0 => m.star(),
                1 => m.one(),
                _ => m.zero(),
            };
            if op % 2 == 0 {
                acc = m.add(&acc, &next);
            } else {
                acc = m.mul(&acc, &next);
            }
        }
        acc
    })
}

/// Strategy: a provenance tree with distinct leaves (built through the
/// monoid operators, like the engine does).
fn prov_tree(offset: u64) -> impl Strategy<Value = Prov> {
    proptest::collection::vec(0u8..4, 0..5).prop_map(move |ops| {
        let m = ProvMonoid;
        let mut next_leaf = offset * 100;
        let mut leaf = || {
            next_leaf += 1;
            Prov::Leaf(next_leaf)
        };
        let mut acc = leaf();
        for op in ops {
            let rhs = match op {
                0 | 1 => leaf(),
                2 => Prov::True,
                _ => Prov::False,
            };
            if op % 2 == 0 {
                acc = m.add(&acc, &rhs);
            } else {
                acc = m.mul(&acc, &rhs);
            }
        }
        acc
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn bagmax_laws_on_random_vectors(a in budget_vec(), b in budget_vec(), c in budget_vec()) {
        let m = BagMaxMonoid::new(CAP);
        let sample = [a, b, c, m.zero(), m.one(), m.star()];
        let report = check_laws(&m, &sample, |x, y| x == y);
        prop_assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn bagmax_ops_preserve_monotonicity(a in budget_vec(), b in budget_vec()) {
        let m = BagMaxMonoid::new(CAP);
        prop_assert!(m.add(&a, &b).is_monotone());
        prop_assert!(m.mul(&a, &b).is_monotone());
    }

    #[test]
    fn satcount_laws_on_random_vectors(a in sat_vec(), b in sat_vec(), c in sat_vec()) {
        let m = SatCountMonoid::new(CAP);
        let sample = [a, b, c, m.zero(), m.one(), m.star()];
        let report = check_laws(&m, &sample, |x, y| x == y);
        prop_assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn satcount_totals_multiply(a in sat_vec(), b in sat_vec()) {
        // total(x ⊕ y)(k) == total(x ⊗ y)(k) == Σ_{k1+k2=k} total_x(k1)·total_y(k2):
        // both operators count all subset pairs, only the bool split differs.
        let m = SatCountMonoid::new(CAP);
        let sum = m.add(&a, &b);
        let prod = m.mul(&a, &b);
        for k in 0..=CAP {
            let mut expect = Natural::zero();
            for k1 in 0..=k {
                expect.add_assign_ref(&a.total(k1).mul_ref(&b.total(k - k1)));
            }
            prop_assert_eq!(sum.total(k), expect.clone(), "⊕ k={}", k);
            prop_assert_eq!(prod.total(k), expect, "⊗ k={}", k);
        }
    }

    #[test]
    fn provenance_laws_on_random_trees(
        a in prov_tree(1),
        b in prov_tree(2),
        c in prov_tree(3),
    ) {
        let m = ProvMonoid;
        let sample = [a, b, c, Prov::True, Prov::False];
        let report = check_laws(&m, &sample, |x, y| x == y);
        prop_assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn provenance_ops_preserve_decomposability(a in prov_tree(1), b in prov_tree(2)) {
        // Disjoint leaf ranges → operations keep trees decomposable
        // (the engine-level Lemma 6.3 in miniature).
        let m = ProvMonoid;
        prop_assert!(a.is_decomposable());
        prop_assert!(b.is_decomposable());
        prop_assert!(m.add(&a, &b).is_decomposable());
        prop_assert!(m.mul(&a, &b).is_decomposable());
    }

    #[test]
    fn provenance_semantics_respected_by_ops(a in prov_tree(4), b in prov_tree(5)) {
        // eval_bool of ⊕/⊗ is the ∨/∧ of the children's evaluations.
        let m = ProvMonoid;
        let assign = |s: u64| !s.is_multiple_of(3);
        prop_assert_eq!(
            m.add(&a, &b).eval_bool(&assign),
            a.eval_bool(&assign) || b.eval_bool(&assign)
        );
        prop_assert_eq!(
            m.mul(&a, &b).eval_bool(&assign),
            a.eval_bool(&assign) && b.eval_bool(&assign)
        );
        // multiplicity of ⊕/⊗ is sum/product.
        let mult = |s: u64| s % 3;
        prop_assert_eq!(
            m.add(&a, &b).multiplicity(&mult),
            a.multiplicity(&mult) + b.multiplicity(&mult)
        );
        prop_assert_eq!(
            m.mul(&a, &b).multiplicity(&mult),
            a.multiplicity(&mult) * b.multiplicity(&mult)
        );
    }
}
