//! Engine-level invariants on random hierarchical instances:
//! Proposition 5.1 (any elimination order works), Lemma 6.6 (supports
//! never grow), Theorem 6.7 (linearly many operations), and
//! cross-monoid consistency.

mod common;

use common::random_instance;
use hq_monoid::{BoolMonoid, CountMonoid, ProbMonoid, TropicalMinMonoid, TROPICAL_INF};
use hq_query::{plan_with_order, PlanOrder};
use hq_unify::{annotate, evaluate, run_plan};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// All three plan orders produce identical results (Prop. 5.1: the
    /// elimination order is a don't-care).
    #[test]
    fn plan_order_invariance(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 5, 3);
        let facts = inst.database.facts();
        let probs: Vec<f64> =
            facts.iter().map(|_| inst.rng.gen_range(0.0..=1.0)).collect();
        let mut results = Vec::new();
        for order in [PlanOrder::Rule1First, PlanOrder::Rule2First, PlanOrder::Rule1HighVar] {
            let p = plan_with_order(&inst.query, order).unwrap();
            let db = annotate(
                &inst.query,
                &inst.interner,
                facts.iter().enumerate().map(|(i, f)| (f.clone(), probs[i])),
            )
            .unwrap();
            let (v, stats) = run_plan(&ProbMonoid, &p, db);
            prop_assert!(stats.support_never_grew(), "order {order:?}");
            results.push(v);
        }
        prop_assert!(
            results.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
            "query {} results {:?}",
            inst.query,
            results
        );
    }

    /// Boolean and counting monoids agree: count > 0 iff satisfiable,
    /// and both match the join engine.
    #[test]
    fn bool_count_join_consistency(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 5, 3);
        let facts = inst.database.facts();
        let (sat, _) = evaluate(
            &BoolMonoid,
            &inst.query,
            &inst.interner,
            facts.iter().map(|f| (f.clone(), true)),
        )
        .unwrap();
        let (count, _) = evaluate(
            &CountMonoid,
            &inst.query,
            &inst.interner,
            facts.iter().map(|f| (f.clone(), 1u64)),
        )
        .unwrap();
        prop_assert_eq!(sat, count > 0, "query {}", inst.query);
        let pattern = inst.query.to_pattern(&mut inst.interner);
        prop_assert_eq!(
            count,
            hq_db::count_matches(&inst.database, &pattern).unwrap()
        );
    }

    /// Tropical evaluation: finite cost iff satisfiable, and with
    /// all-zero weights the minimum cost is 0.
    #[test]
    fn tropical_consistency(seed in 0u64..1_000_000) {
        let inst = random_instance(seed, 5, 5, 5, 3);
        let facts = inst.database.facts();
        let (cost, _) = evaluate(
            &TropicalMinMonoid,
            &inst.query,
            &inst.interner,
            facts.iter().map(|f| (f.clone(), 0u64)),
        )
        .unwrap();
        let (sat, _) = evaluate(
            &BoolMonoid,
            &inst.query,
            &inst.interner,
            facts.iter().map(|f| (f.clone(), true)),
        )
        .unwrap();
        prop_assert_eq!(sat, cost != TROPICAL_INF, "query {}", inst.query);
        if sat {
            prop_assert_eq!(cost, 0);
        }
    }

    /// Theorem 6.7: the number of ⊕/⊗ operations is at most linear in
    /// the annotated-database size (with plan-length constant factor).
    #[test]
    fn op_count_linear_bound(seed in 0u64..1_000_000) {
        let inst = random_instance(seed, 5, 5, 6, 3);
        let facts = inst.database.facts();
        let (_, stats) = evaluate(
            &CountMonoid,
            &inst.query,
            &inst.interner,
            facts.iter().map(|f| (f.clone(), 1u64)),
        )
        .unwrap();
        let n = facts.len().max(1) as u64;
        let steps = (inst.query.var_count() + inst.query.atom_count()) as u64;
        prop_assert!(
            stats.total_ops() <= n * (steps + 1),
            "query {}: {} ops for {} facts",
            inst.query,
            stats.total_ops(),
            n
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The incremental engine agrees with a fresh full run after every
    /// update in a random update sequence (probability monoid).
    #[test]
    fn incremental_matches_full_runs(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        if facts.is_empty() {
            return Ok(());
        }
        let mut tid: Vec<(hq_db::Fact, f64)> = facts
            .iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f.clone(), p)
            })
            .collect();
        let mut run = hq_unify::IncrementalRun::new(
            ProbMonoid,
            &inst.query,
            &inst.interner,
            tid.clone(),
        )
        .unwrap();
        for _ in 0..6 {
            let j = inst.rng.gen_range(0..tid.len());
            // Include exact-zero deletions in the mix.
            let new_p = if inst.rng.gen_bool(0.3) {
                0.0
            } else {
                inst.rng.gen_range(0.0..=1.0)
            };
            tid[j].1 = new_p;
            let got = *run
                .update(&inst.interner, &tid[j].0, new_p)
                .unwrap();
            let (fresh, _) =
                evaluate(&ProbMonoid, &inst.query, &inst.interner, tid.clone()).unwrap();
            prop_assert!(
                (got - fresh).abs() < 1e-9,
                "query {} incremental {got} vs fresh {fresh}",
                inst.query
            );
        }
    }

    /// Same differential check over the counting semiring with pure
    /// insert/delete updates (annotations 0 and 1).
    #[test]
    fn incremental_counting_inserts_deletes(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        if facts.is_empty() {
            return Ok(());
        }
        let mut present: Vec<bool> = facts.iter().map(|_| true).collect();
        let annotated: Vec<(hq_db::Fact, u64)> =
            facts.iter().map(|f| (f.clone(), 1u64)).collect();
        let mut run = hq_unify::IncrementalRun::new(
            CountMonoid,
            &inst.query,
            &inst.interner,
            annotated,
        )
        .unwrap();
        for _ in 0..6 {
            let j = inst.rng.gen_range(0..facts.len());
            present[j] = !present[j];
            let got = *run
                .update(&inst.interner, &facts[j], u64::from(present[j]))
                .unwrap();
            let current: Vec<(hq_db::Fact, u64)> = facts
                .iter()
                .zip(&present)
                .map(|(f, &p)| (f.clone(), u64::from(p)))
                .collect();
            let (fresh, _) =
                evaluate(&CountMonoid, &inst.query, &inst.interner, current).unwrap();
            prop_assert_eq!(got, fresh, "query {}", inst.query);
        }
    }
}
