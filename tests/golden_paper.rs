//! Golden tests: every worked example and concrete claim in the paper,
//! verified end-to-end.

use hierarchical_queries::prelude::*;
use hq_monoid::laws::{annihilation_counterexample, distributivity_counterexample};
use hq_monoid::{BagMaxMonoid, SatCountMonoid};
use hq_query::{non_hierarchical_witness, plan_with_order, witness_forest, PlanOrder};

/// The Figure 1 instance with the Eq. (1) query.
fn fig1() -> (Query, Database, Database, Interner) {
    let q = parse_query("Q() :- R(A,B), S(A,C), T(A,C,D)").unwrap();
    let (d, mut interner) = db_from_ints(&[
        ("R", &[&[1, 5]]),
        ("S", &[&[1, 1], &[1, 2]]),
        ("T", &[&[1, 2, 4]]),
    ]);
    let r = interner.intern("R");
    let t = interner.intern("T");
    let mut d_r = Database::new();
    d_r.insert_tuple(r, Tuple::ints(&[1, 6]));
    d_r.insert_tuple(r, Tuple::ints(&[1, 7]));
    d_r.insert_tuple(t, Tuple::ints(&[1, 1, 4]));
    d_r.insert_tuple(t, Tuple::ints(&[1, 2, 9]));
    (q, d, d_r, interner)
}

#[test]
fn section1_example_queries_classified() {
    // "the query Q_h() :- E(X,Y) ∧ F(Y,Z) is hierarchical, while
    //  Q_nh() :- R(X) ∧ S(X,Y) ∧ T(Y) is not."
    assert!(is_hierarchical(&q_hierarchical()));
    assert!(!is_hierarchical(&q_non_hierarchical()));
}

#[test]
fn fig1_initial_value_is_1() {
    // "Initially, Q has one satisfying assignment over D, namely
    //  (A,B,C,D) = (1,5,2,4)."
    let (q, d, _, mut interner) = fig1();
    let pattern = q.to_pattern(&mut interner);
    assert_eq!(hq_db::count_matches(&d, &pattern).unwrap(), 1);
    let matches = hq_db::all_matches(&d, &pattern).unwrap();
    assert_eq!(
        matches,
        vec![vec![
            Value::Int(1),
            Value::Int(5),
            Value::Int(2),
            Value::Int(4)
        ]]
    );
}

#[test]
fn fig1_suboptimal_repair_reaches_3() {
    // "We could amend D with the two facts R(1,6) and R(1,7) from D_r,
    //  which would bring Q(D) to 3."
    let (q, d, _, mut interner) = fig1();
    let r = interner.intern("R");
    let mut d2 = d.clone();
    d2.insert_tuple(r, Tuple::ints(&[1, 6]));
    d2.insert_tuple(r, Tuple::ints(&[1, 7]));
    let pattern = q.to_pattern(&mut interner);
    assert_eq!(hq_db::count_matches(&d2, &pattern).unwrap(), 3);
}

#[test]
fn fig1_optimal_repair_reaches_4() {
    // "a better repair is to amend D with the two facts R(1,6) and
    //  T(1,2,9), since this would bring Q(D) to 4. [...] the answer to
    //  this Bag-Set Maximization instance is 4."
    let (q, d, d_r, mut interner) = fig1();
    let sol = bsm::maximize(&q, &interner, &d, &d_r, 2).unwrap();
    assert_eq!(sol.optimum(), 4);
    // And the specific repair the paper names achieves it:
    let r = interner.intern("R");
    let t = interner.intern("T");
    let mut d2 = d.clone();
    d2.insert_tuple(r, Tuple::ints(&[1, 6]));
    d2.insert_tuple(t, Tuple::ints(&[1, 2, 9]));
    let pattern = q.to_pattern(&mut interner);
    assert_eq!(hq_db::count_matches(&d2, &pattern).unwrap(), 4);
}

#[test]
fn example_52_elimination_succeeds_with_paper_step_counts() {
    // Example 5.2: 6 steps (4 × Rule 1, 2 × Rule 2), ending in Q():-R().
    let q = parse_query("Q() :- R(A,B), S(A,C), T(A,C,D)").unwrap();
    for order in [
        PlanOrder::Rule1First,
        PlanOrder::Rule2First,
        PlanOrder::Rule1HighVar,
    ] {
        let p = plan_with_order(&q, order).unwrap();
        assert_eq!(p.rule1_count(), 4);
        assert_eq!(p.rule2_count(), 2);
    }
}

#[test]
fn example_53_elimination_gets_stuck() {
    // Example 5.3: R(A,B), S(B,C), T(C,D) reduces to
    // R'(B), S(B,C), T'(C) and then no rule applies.
    let q = parse_query("Q() :- R(A,B), S(B,C), T(C,D)").unwrap();
    let err = plan(&q).unwrap_err();
    let (a, b) = (err.witness.a, err.witness.b);
    assert_eq!([q.var_name(a), q.var_name(b)], ["B", "C"]);
    assert!(witness_forest(&q).is_none());
}

#[test]
fn example_54_disconnected_reduces_to_single_nullary_atom() {
    let q = parse_query("Q() :- R(A), S(B)").unwrap();
    let p = plan(&q).unwrap();
    assert_eq!(p.rule1_count(), 2);
    assert_eq!(p.rule2_count(), 1);
}

#[test]
fn section2_dalvi_suciu_pipeline_hand_value() {
    // Running Eqs. (4)–(9) on the Fig. 1 database with p = 1/2
    // everywhere gives P(Q) = 1/8 (worked by hand in pqe.rs tests; here
    // we pin the exact rational).
    let (q, d, _, interner) = fig1();
    let tid: Vec<(Fact, Rational)> = d
        .facts()
        .into_iter()
        .map(|f| (f, Rational::ratio(1, 2)))
        .collect();
    let p = pqe::probability_exact(&q, &interner, &tid).unwrap();
    assert_eq!(p, Rational::ratio(1, 8));
}

#[test]
fn section2_bsm_star_annotation_semantics() {
    // Definition 5.10: facts in D ↦ 1̄; facts only in D_r ↦ ★ = (0,1,1,…).
    let m = BagMaxMonoid::new(3);
    assert_eq!(m.star().as_slice(), [0, 1, 1, 1]);
    assert_eq!(m.one().as_slice(), [1, 1, 1, 1]);
    assert_eq!(m.zero().as_slice(), [0, 0, 0, 0]);
}

#[test]
fn section1_none_of_the_three_monoids_distribute() {
    // "each instantiation of the 2-monoid that we consider for each of
    //  the three problems is not going to be a semiring."
    let pm = ProbMonoid;
    let ps = [0.0, 0.5, 1.0];
    assert!(distributivity_counterexample(&pm, &ps, |a, b| (a - b).abs() < 1e-12).is_some());
    let bm = BagMaxMonoid::new(2);
    let bs = [bm.zero(), bm.one(), bm.star()];
    assert!(distributivity_counterexample(&bm, &bs, |a, b| a == b).is_some());
    let sm = SatCountMonoid::new(2);
    let ss = [sm.zero(), sm.one(), sm.star()];
    assert!(distributivity_counterexample(&sm, &ss, |a, b| a == b).is_some());
}

#[test]
fn section56_shapley_monoid_non_annihilating() {
    // "the above 2-monoid does not satisfy the annihilation-by-zero
    //  property [...] It does however satisfy the weaker property
    //  0 ⊗ 0 = 0."
    let sm = SatCountMonoid::new(2);
    let ss = [sm.zero(), sm.one(), sm.star()];
    assert!(annihilation_counterexample(&sm, &ss, |a, b| a == b).is_some());
    assert_eq!(sm.mul(&sm.zero(), &sm.zero()), sm.zero());
}

#[test]
fn theorem_44_witness_shape_for_every_non_hierarchical_query() {
    // The hardness proof's canonical form: A in R,S but not T; B in S,T
    // but not R.
    for src in [
        "Q() :- R(X), S(X,Y), T(Y)",
        "Q() :- R(A,B), S(B,C), T(C,D)",
        "Q() :- R(A,B), S(B,C), T(A,C)",
        "Q() :- R(A,U), S(A,B), T(B,W), P(A,V)",
    ] {
        let q = parse_query(src).unwrap();
        let w = non_hierarchical_witness(&q).expect(src);
        let at_a = q.at(w.a);
        let at_b = q.at(w.b);
        assert!(
            at_a.contains(&w.r_atom) && !at_b.contains(&w.r_atom),
            "{src}"
        );
        assert!(
            at_a.contains(&w.s_atom) && at_b.contains(&w.s_atom),
            "{src}"
        );
        assert!(
            !at_a.contains(&w.t_atom) && at_b.contains(&w.t_atom),
            "{src}"
        );
    }
}

#[test]
fn footnote_example_probability_operators() {
    // Eq. (2)/(3): p1 ⊗ p2 = p1·p2 and p1 ⊕ p2 = p1 + p2 − p1·p2.
    let m = ProbMonoid;
    assert_eq!(m.mul(&0.5, &0.5), 0.25);
    assert!((m.add(&0.5, &0.5) - 0.75).abs() < 1e-15);
    assert!((m.add(&0.3, &0.4) - 0.58).abs() < 1e-15);
}
