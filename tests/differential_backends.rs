//! Differential testing of the storage backends: the ordered-map
//! oracle vs the columnar fast path vs the compressed block tier must
//! agree **exactly** — result value (bit-for-bit on floats), support
//! trajectory, and ⊕/⊗ operation counts — on random hierarchical
//! instances, for every monoid family.

mod common;

use common::random_instance;
use hq_db::Fact;
use hq_monoid::{BagMaxMonoid, CountMonoid, ProbMonoid, SatCountMonoid, TwoMonoid};
use hq_unify::{bsm, evaluate_on, pqe, Backend, IncrementalRun};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Probabilities agree bit-for-bit, as do stats, on random
    /// hierarchical TID instances.
    #[test]
    fn pqe_backends_bit_identical(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 6, 3);
        let tid: Vec<(Fact, f64)> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f, p)
            })
            .collect();
        let (pm, sm) = pqe::probability_with_stats_on(
            Backend::Map, &inst.query, &inst.interner, &tid,
        ).unwrap();
        let (pc, sc) = pqe::probability_with_stats_on(
            Backend::Columnar, &inst.query, &inst.interner, &tid,
        ).unwrap();
        let (pz, sz) = pqe::probability_with_stats_on(
            Backend::Compressed, &inst.query, &inst.interner, &tid,
        ).unwrap();
        prop_assert_eq!(pm.to_bits(), pc.to_bits(), "map {} vs columnar {}", pm, pc);
        prop_assert_eq!(pm.to_bits(), pz.to_bits(), "map {} vs compressed {}", pm, pz);
        prop_assert_eq!(&sm, &sc, "stats diverged on {}", inst.query);
        prop_assert_eq!(&sm, &sz, "compressed stats diverged on {}", inst.query);
        prop_assert!(sm.support_never_grew());
        prop_assert_eq!(sm.total_ops(), sc.total_ops());
    }

    /// The counting semiring (annihilating: one-sided merges skip ⊗)
    /// agrees on value and op accounting — including the compressed
    /// merge's block-skip path, which must skip rows without ops
    /// exactly as the dense merge steps past them.
    #[test]
    fn count_backends_agree(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 6, 3);
        let facts: Vec<(Fact, u64)> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| {
                let k = inst.rng.gen_range(1u64..=3);
                (f, k)
            })
            .collect();
        let (vm, sm) = evaluate_on(
            Backend::Map, &CountMonoid, &inst.query, &inst.interner, facts.clone(),
        ).unwrap();
        let (vc, sc) = evaluate_on(
            Backend::Columnar, &CountMonoid, &inst.query, &inst.interner, facts.clone(),
        ).unwrap();
        let (vz, sz) = evaluate_on(
            Backend::Compressed, &CountMonoid, &inst.query, &inst.interner, facts,
        ).unwrap();
        prop_assert_eq!(vm, vc, "{}", inst.query);
        prop_assert_eq!(vm, vz, "compressed diverged on {}", inst.query);
        prop_assert_eq!(&sm, &sc);
        prop_assert_eq!(&sm, &sz);
    }

    /// Bag-Set Maximization (non-annihilating monoid, 0-filled merges,
    /// fused columnar ψ-encoding) returns identical budget curves and
    /// stats.
    #[test]
    fn bsm_backends_agree(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        // Split the instance into (D, D_r) at random.
        let mut d = hq_db::Database::new();
        let mut d_r = hq_db::Database::new();
        for (rel, r) in inst.database.relations() {
            d.declare(rel, r.arity());
            d_r.declare(rel, r.arity());
        }
        for f in inst.database.facts() {
            if inst.rng.gen_bool(0.5) {
                d.insert(f);
            } else {
                d_r.insert(f);
            }
        }
        let theta = inst.rng.gen_range(0usize..=4);
        let map = bsm::maximize_on(
            Backend::Map, &inst.query, &inst.interner, &d, &d_r, theta,
        ).unwrap();
        let col = bsm::maximize_on(
            Backend::Columnar, &inst.query, &inst.interner, &d, &d_r, theta,
        ).unwrap();
        let cmp = bsm::maximize_on(
            Backend::Compressed, &inst.query, &inst.interner, &d, &d_r, theta,
        ).unwrap();
        prop_assert_eq!(&map.curve, &col.curve, "{} θ={}", inst.query, theta);
        prop_assert_eq!(&map.curve, &cmp.curve, "compressed: {} θ={}", inst.query, theta);
        prop_assert_eq!(&map.stats, &col.stats);
        prop_assert_eq!(&map.stats, &cmp.stats);
        prop_assert!(map.stats.support_never_grew());
    }

    /// The #Sat monoid (Shapley substrate; exact big-integer vectors)
    /// agrees across backends.
    #[test]
    fn satcount_backends_agree(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        if facts.is_empty() {
            return Ok(());
        }
        let n = facts.len();
        let monoid = SatCountMonoid::new(n);
        let annotated: Vec<_> = facts
            .iter()
            .map(|f| {
                let k = if inst.rng.gen_bool(0.5) { monoid.one() } else { monoid.star() };
                (f.clone(), k)
            })
            .collect();
        let (vm, sm) = evaluate_on(
            Backend::Map, &monoid, &inst.query, &inst.interner, annotated.clone(),
        ).unwrap();
        let (vc, sc) = evaluate_on(
            Backend::Columnar, &monoid, &inst.query, &inst.interner, annotated.clone(),
        ).unwrap();
        let (vz, sz) = evaluate_on(
            Backend::Compressed, &monoid, &inst.query, &inst.interner, annotated,
        ).unwrap();
        prop_assert_eq!(&vm, &vc, "{}", inst.query);
        prop_assert_eq!(&vm, &vz, "compressed diverged on {}", inst.query);
        prop_assert_eq!(&sm, &sc);
        prop_assert_eq!(&sm, &sz);
    }

    /// The incremental maintainer stays bit-identical across backends
    /// through a random update schedule (the compressed tier's point
    /// writes go through block edits).
    #[test]
    fn incremental_backends_agree(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        if facts.is_empty() {
            return Ok(());
        }
        let tid: Vec<(Fact, f64)> = facts
            .iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f.clone(), p)
            })
            .collect();
        let mut map_run =
            IncrementalRun::new(ProbMonoid, &inst.query, &inst.interner, tid.clone()).unwrap();
        let mut col_run: IncrementalRun<ProbMonoid, hq_unify::ColumnarRelation<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &inst.query, &inst.interner, tid.clone())
                .unwrap();
        let mut cmp_run: IncrementalRun<ProbMonoid, hq_unify::CompressedColumnar<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &inst.query, &inst.interner, tid)
                .unwrap();
        prop_assert_eq!(map_run.result().to_bits(), col_run.result().to_bits());
        prop_assert_eq!(map_run.result().to_bits(), cmp_run.result().to_bits());
        for _ in 0..6 {
            let f = &facts[inst.rng.gen_range(0..facts.len())];
            let p = if inst.rng.gen_bool(0.25) {
                0.0 // deletion
            } else {
                inst.rng.gen_range(0.0..=1.0)
            };
            let a = *map_run.update(&inst.interner, f, p).unwrap();
            let b = *col_run.update(&inst.interner, f, p).unwrap();
            let c = *cmp_run.update(&inst.interner, f, p).unwrap();
            prop_assert_eq!(a.to_bits(), b.to_bits(), "after {} := {}", f.display(&inst.interner), p);
            prop_assert_eq!(a.to_bits(), c.to_bits(), "compressed after {} := {}", f.display(&inst.interner), p);
        }
    }

    /// Backend-reported support sizes match the semantic support at
    /// every step (stats vectors identical entry-wise).
    #[test]
    fn support_trajectories_match(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 6, 3);
        let facts: Vec<(Fact, u64)> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| (f, 1u64))
            .collect();
        let m = BagMaxMonoid::new(2);
        let annotated: Vec<_> = facts
            .iter()
            .map(|(f, _)| {
                let k = if inst.rng.gen_bool(0.7) { m.one() } else { m.star() };
                (f.clone(), k)
            })
            .collect();
        let (_, sm) = evaluate_on(
            Backend::Map, &m, &inst.query, &inst.interner, annotated.clone(),
        ).unwrap();
        let (_, sc) = evaluate_on(
            Backend::Columnar, &m, &inst.query, &inst.interner, annotated.clone(),
        ).unwrap();
        let (_, sz) = evaluate_on(
            Backend::Compressed, &m, &inst.query, &inst.interner, annotated,
        ).unwrap();
        prop_assert_eq!(&sm.support_sizes, &sc.support_sizes, "{}", inst.query);
        prop_assert_eq!(&sm.support_sizes, &sz.support_sizes, "{}", inst.query);
    }
}

/// Pathological-for-RLE pin: every key and every annotation distinct,
/// so run-length and dictionary encodings win nothing anywhere — key
/// columns fall back to Delta/FOR bit-packing, annotation columns to
/// the dense layout — and the answer still matches the oracle bit for
/// bit across several block boundaries (> [`BLOCK_ROWS`] rows).
#[test]
fn all_distinct_columns_stay_bit_identical() {
    use hq_db::Tuple;
    let q = hq_query::parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
    let mut interner = hq_db::Interner::new();
    let e = interner.intern("E");
    let f = interner.intern("F");
    let n = 10_000i64;
    let mut tid: Vec<(Fact, f64)> = Vec::new();
    for i in 0..n {
        // Distinct first columns, distinct join keys, and a distinct
        // probability per fact (strictly increasing, no two equal).
        let p_e = 0.25 + (i as f64) * 1e-5;
        let p_f = 0.50 + (i as f64) * 1e-5;
        tid.push((Fact::new(e, Tuple::ints(&[i, n + i])), p_e));
        tid.push((Fact::new(f, Tuple::ints(&[n + i, 2 * n + i])), p_f));
    }
    let (pm, sm) = pqe::probability_with_stats_on(Backend::Map, &q, &interner, &tid).unwrap();
    let (pz, sz) =
        pqe::probability_with_stats_on(Backend::Compressed, &q, &interner, &tid).unwrap();
    assert_eq!(pm.to_bits(), pz.to_bits(), "map {pm} vs compressed {pz}");
    assert_eq!(sm, sz);
}
