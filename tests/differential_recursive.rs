//! Differential testing of recursive fixpoint plans: through arbitrary
//! schedules of annotated transitive-closure queries and update batches
//! — annotation drifts, deletions, dynamic edge inserts with novel
//! domain values — every `query_fix` served from the maintained
//! fixpoint cache must be **indistinguishable** from a fresh
//! [`transitive_closure`] re-run over the current edge set: values
//! bit-for-bit (floats included) and the replayed [`EngineStats`]
//! (⊕/⊗ op counts *and* support trajectory) equal to the naive run's —
//! on the ordered-map oracle, the sequential columnar backend, the
//! compressed block tier, and the sharded backend at thread counts 2
//! and 8, for the prob, count, and bag-max 2-monoids.
//!
//! Non-prop pins: a repeated `query_fix` must perform **zero** monoid
//! operations (the fixpoint is replayed from the cached run, never
//! re-evaluated); a single-edge insert into a ≥ 32k-edge closure must
//! refold strictly fewer rows — and perform strictly fewer ⊕/⊗ — than
//! a fresh fixpoint while landing bit-identical; a monoid whose ⊗ is
//! not fixpoint-convergent ([`SatCountMonoid`]) is rejected with a
//! validation error at both the kernel and the serving layer instead
//! of looping forever; and the multi-tenant [`Server`] serves the same
//! bits as a serial session before and after an epoch publish.

use hq_db::{Fact, Interner, Tuple, Value};
use hq_monoid::{BagMaxMonoid, CountMonoid, ProbMonoid, SatCountMonoid, SatVec, TwoMonoid};
use hq_unify::engine::EngineStats;
use hq_unify::fixpoint::{
    patch_inserts, transitive_closure, FixpointError, FixpointRun, PatchOutcome, StepShape,
};
use hq_unify::{
    ColumnarRelation, CompressedAnn, CompressedColumnar, MapRelation, Parallelism, Server,
    ServingError, ServingSession, ShardedColumnar,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Thread counts for the sharded serving sessions.
const THREADS: [usize; 2] = [2, 8];

/// Update rounds per proptest schedule.
const ROUNDS: usize = 3;

/// Base domain for edge endpoints; novel inserts reach past it to
/// force dictionary extension on the encoded backends.
const DOMAIN: i64 = 6;

/// One serving session per backend flavour, all fed the same schedule
/// of updates and recursive queries.
struct Fleet<M: TwoMonoid>
where
    M::Elem: CompressedAnn,
{
    map: ServingSession<M, MapRelation<M::Elem>>,
    columnar: ServingSession<M, ColumnarRelation<M::Elem>>,
    compressed: ServingSession<M, CompressedColumnar<M::Elem>>,
    sharded: Vec<ServingSession<M, ShardedColumnar<M::Elem>>>,
}

impl<M: TwoMonoid + Clone> Fleet<M>
where
    M::Elem: CompressedAnn,
{
    fn build(monoid: &M, interner: &Interner, facts: &[(Fact, M::Elem)]) -> Self {
        Fleet {
            map: ServingSession::new(monoid.clone(), interner, facts.iter().cloned()).unwrap(),
            columnar: ServingSession::new(monoid.clone(), interner, facts.iter().cloned()).unwrap(),
            compressed: ServingSession::new(monoid.clone(), interner, facts.iter().cloned())
                .unwrap(),
            sharded: THREADS
                .iter()
                .map(|&t| {
                    ServingSession::with_parallelism(
                        monoid.clone(),
                        interner,
                        facts.iter().cloned(),
                        Parallelism::fine_grained(t),
                    )
                    .unwrap()
                })
                .collect(),
        }
    }

    /// Serves one recursive readout from every session and asserts all
    /// agree; returns the shared `(value, stats)`.
    fn query_fix(
        &mut self,
        interner: &Interner,
        src: Option<Value>,
        dst: Option<Value>,
    ) -> (M::Elem, EngineStats) {
        let (want, want_stats) = self.map.query_fix(interner, "E", src, dst).unwrap();
        let (got, stats) = self.columnar.query_fix(interner, "E", src, dst).unwrap();
        assert_eq!(
            want, got,
            "columnar fixpoint diverged on ({src:?}, {dst:?})"
        );
        assert_eq!(want_stats, stats, "columnar fixpoint stats diverged");
        let (got, stats) = self.compressed.query_fix(interner, "E", src, dst).unwrap();
        assert_eq!(
            want, got,
            "compressed fixpoint diverged on ({src:?}, {dst:?})"
        );
        assert_eq!(want_stats, stats, "compressed fixpoint stats diverged");
        for s in &mut self.sharded {
            let (got, stats) = s.query_fix(interner, "E", src, dst).unwrap();
            assert_eq!(want, got, "sharded fixpoint diverged on ({src:?}, {dst:?})");
            assert_eq!(want_stats, stats, "sharded fixpoint stats diverged");
        }
        (want, want_stats)
    }

    fn update_batch(&mut self, interner: &Interner, batch: &[(Fact, M::Elem)]) {
        self.map.update_batch(interner, batch).unwrap();
        self.columnar.update_batch(interner, batch).unwrap();
        self.compressed.update_batch(interner, batch).unwrap();
        for s in &mut self.sharded {
            s.update_batch(interner, batch).unwrap();
        }
    }
}

/// The serving layer's readout convention over a kernel run — the
/// oracle side of every differential comparison.
fn readout<M: TwoMonoid>(
    monoid: &M,
    run: &FixpointRun<M::Elem>,
    src: Option<Value>,
    dst: Option<Value>,
) -> M::Elem {
    match (src, dst) {
        (Some(s), Some(d)) => run.get(s, d).cloned().unwrap_or_else(|| monoid.zero()),
        (Some(s), None) => monoid.sum(
            run.acc
                .range((s, Value::Int(i64::MIN))..)
                .take_while(|(&(a, _), _)| a == s)
                .map(|(_, (k, _))| k),
        ),
        (None, Some(d)) => monoid.sum(
            run.acc
                .iter()
                .filter(|(&(_, b), _)| b == d)
                .map(|(_, (k, _))| k),
        ),
        (None, None) => run.total.clone(),
    }
}

/// Fresh naive re-run over the model's current edge set. `BTreeMap`
/// iteration yields tuples ascending — the same row order the cached
/// scans feed the serving-layer fixpoint, so stats match exactly.
fn naive_rerun<M: TwoMonoid>(
    monoid: &M,
    current: &BTreeMap<Fact, M::Elem>,
) -> FixpointRun<M::Elem> {
    let edges: Vec<(Tuple, M::Elem)> = current
        .iter()
        .map(|(f, k)| (f.tuple.clone(), k.clone()))
        .collect();
    transitive_closure(monoid, &edges).unwrap()
}

/// A random endpoint probe: closed pairs, open-source / open-target
/// sums, and the grand total, over both present and absent values.
fn random_probe(rng: &mut StdRng) -> (Option<Value>, Option<Value>) {
    let end = |rng: &mut StdRng| {
        if rng.gen_bool(0.3) {
            None
        } else {
            Some(Value::Int(rng.gen_range(0..DOMAIN + 2)))
        }
    };
    (end(rng), end(rng))
}

/// One random edge batch: annotation drifts on existing edges, deletes
/// (zero annotation), and inserts — some reaching past the original
/// domain so the encoded backends must extend their dictionaries.
fn random_edge_batch<M: TwoMonoid>(
    rng: &mut StdRng,
    monoid: &M,
    current: &BTreeMap<Fact, M::Elem>,
    rel: hq_db::Sym,
    mut ann: impl FnMut(&mut StdRng) -> M::Elem,
) -> Vec<(Fact, M::Elem)> {
    let existing: Vec<Fact> = current.keys().cloned().collect();
    let mut batch = Vec::new();
    for _ in 0..rng.gen_range(1..5) {
        let roll: f64 = rng.gen();
        if roll < 0.25 && !existing.is_empty() {
            // Delete an existing edge.
            let f = existing[rng.gen_range(0..existing.len())].clone();
            batch.push((f, monoid.zero()));
        } else if roll < 0.5 && !existing.is_empty() {
            // Drift an existing edge's annotation.
            let f = existing[rng.gen_range(0..existing.len())].clone();
            batch.push((f, ann(rng)));
        } else {
            // Insert (or overwrite) an edge, sometimes on novel values.
            let hi = if rng.gen_bool(0.3) {
                DOMAIN * 4 + 7
            } else {
                DOMAIN
            };
            let t = Tuple::ints(&[rng.gen_range(0..hi), rng.gen_range(0..hi)]);
            batch.push((Fact::new(rel, t), ann(rng)));
        }
    }
    batch
}

fn apply_to_model<M: TwoMonoid>(
    monoid: &M,
    current: &mut BTreeMap<Fact, M::Elem>,
    batch: &[(Fact, M::Elem)],
) {
    for (f, k) in batch {
        if monoid.is_zero(k) {
            current.remove(f);
        } else {
            current.insert(f.clone(), k.clone());
        }
    }
}

/// Drives one full schedule for one monoid: build a fleet over a
/// random edge set, then alternate random probes (compared against the
/// naive re-run oracle, values and stats) with random update batches.
fn drive_schedule<M>(monoid: M, seed: u64, mut ann: impl FnMut(&mut StdRng) -> M::Elem)
where
    M: TwoMonoid + Clone,
    M::Elem: CompressedAnn,
{
    let mut rng = hq_db::generate::rng(seed);
    let mut interner = Interner::new();
    let e = interner.intern("E");

    let mut current: BTreeMap<Fact, M::Elem> = BTreeMap::new();
    current.insert(Fact::new(e, Tuple::ints(&[0, 1])), ann(&mut rng));
    for _ in 0..rng.gen_range(3..10) {
        let t = Tuple::ints(&[rng.gen_range(0..DOMAIN), rng.gen_range(0..DOMAIN)]);
        current.insert(Fact::new(e, t), ann(&mut rng));
    }
    let facts: Vec<(Fact, M::Elem)> = current
        .iter()
        .map(|(f, k)| (f.clone(), k.clone()))
        .collect();
    let mut fleet = Fleet::build(&monoid, &interner, &facts);

    for _ in 0..=ROUNDS {
        let run = naive_rerun(&monoid, &current);
        let mut probes = vec![(None, None)];
        for _ in 0..3 {
            probes.push(random_probe(&mut rng));
        }
        for (src, dst) in probes {
            let want = readout(&monoid, &run, src, dst);
            let (got, stats) = fleet.query_fix(&interner, src, dst);
            assert_eq!(got, want, "fixpoint readout ({src:?}, {dst:?}) diverged");
            assert_eq!(
                stats, run.stats,
                "replayed stats diverged from naive re-run"
            );
        }
        let batch = random_edge_batch(&mut rng, &monoid, &current, e, &mut ann);
        apply_to_model(&monoid, &mut current, &batch);
        fleet.update_batch(&interner, &batch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn recursive_prob_schedules_match_naive_rerun(seed in 0u64..1_000_000) {
        drive_schedule(ProbMonoid, seed, |rng| rng.gen_range(0.05..0.95));
    }

    #[test]
    fn recursive_count_schedules_match_naive_rerun(seed in 0u64..1_000_000) {
        drive_schedule(CountMonoid, seed, |rng| rng.gen_range(1u64..5));
    }

    #[test]
    fn recursive_bagmax_schedules_match_naive_rerun(seed in 0u64..1_000_000) {
        let m = BagMaxMonoid::new(3);
        let elems = m;
        drive_schedule(m, seed, move |rng| {
            if rng.gen_bool(0.5) {
                elems.one()
            } else {
                elems.star()
            }
        });
    }
}

/// A repeated recursive query is a pure cache hit: the value and stats
/// are replayed from the cached run with zero new monoid operations.
#[test]
fn repeated_fix_query_performs_zero_monoid_ops() {
    let mut interner = Interner::new();
    let e = interner.intern("E");
    let facts = vec![
        (Fact::new(e, Tuple::ints(&[1, 2])), 0.5),
        (Fact::new(e, Tuple::ints(&[2, 3])), 0.25),
        (Fact::new(e, Tuple::ints(&[3, 1])), 0.75),
    ];
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, facts).unwrap();
    let first = session
        .query_fix(&interner, "E", Some(Value::Int(1)), None)
        .unwrap();
    let after_first = session.ops_performed();
    assert!(after_first > 0, "the first fixpoint evaluation does work");
    let second = session
        .query_fix(&interner, "E", Some(Value::Int(1)), None)
        .unwrap();
    assert_eq!(first.0.to_bits(), second.0.to_bits());
    assert_eq!(first.1, second.1);
    assert_eq!(
        session.ops_performed(),
        after_first,
        "a cache hit must replay the run, not re-evaluate it"
    );
}

/// The multi-tenant server serves recursive queries bit-identical to a
/// serial session, on every backend flavour, both before and after an
/// epoch publish that extends the dictionary with a novel value.
#[test]
fn server_epoch_publish_serves_bit_identical_fixpoints() {
    fn check<R>(par: Parallelism)
    where
        R: hq_unify::ServingBackend<Ann = f64> + Send + Sync,
    {
        let mut interner = Interner::new();
        let e = interner.intern("E");
        let facts: Vec<(Fact, f64)> = [(1, 2), (2, 3), (3, 4), (5, 1)]
            .iter()
            .enumerate()
            .map(|(j, &(a, b))| (Fact::new(e, Tuple::ints(&[a, b])), 0.2 + 0.07 * j as f64))
            .collect();
        let mut serial: ServingSession<ProbMonoid, MapRelation<f64>> =
            ServingSession::new(ProbMonoid, &interner, facts.iter().cloned()).unwrap();
        let server: Server<ProbMonoid, R> =
            Server::with_parallelism(ProbMonoid, &interner, facts, par).unwrap();

        let probes = [
            (None, None),
            (Some(Value::Int(1)), None),
            (Some(Value::Int(1)), Some(Value::Int(4))),
            (None, Some(Value::Int(3))),
        ];
        let session = server.session();
        for (src, dst) in probes {
            let (want, want_stats) = serial.query_fix(&interner, "E", src, dst).unwrap();
            let (got, stats) = session.query_fix(&interner, "E", src, dst).unwrap();
            assert_eq!(want.to_bits(), got.to_bits(), "pre-publish diverged");
            assert_eq!(want_stats, stats, "pre-publish stats diverged");
        }

        // Novel endpoint 6: the publish path re-encodes and the
        // fixpoint node is rebuilt against the extended dictionary.
        let novel = (Fact::new(e, Tuple::ints(&[4, 6])), 0.5);
        serial.update(&interner, &novel.0, novel.1).unwrap();
        server.update_batch(&interner, &[novel]).unwrap();
        let session = server.session();
        for (src, dst) in probes {
            let (want, want_stats) = serial.query_fix(&interner, "E", src, dst).unwrap();
            let (got, stats) = session.query_fix(&interner, "E", src, dst).unwrap();
            assert_eq!(want.to_bits(), got.to_bits(), "post-publish diverged");
            assert_eq!(want_stats, stats, "post-publish stats diverged");
        }
    }

    check::<MapRelation<f64>>(Parallelism::default());
    check::<ColumnarRelation<f64>>(Parallelism::default());
    check::<CompressedColumnar<f64>>(Parallelism::default());
    for &t in &THREADS {
        check::<ShardedColumnar<f64>>(Parallelism::fine_grained(t));
    }
}

/// A single-edge insert into a ≥ 32k-edge closure patches in place —
/// bit-identical to the fresh fixpoint over the post-insert edges —
/// while refolding strictly fewer rows and performing strictly fewer
/// ⊕/⊗ operations than the fresh run. The graph is many short disjoint
/// chains (so the closure stays linear in the edges) bridged by the
/// inserted edge.
#[test]
fn single_edge_patch_beats_fresh_fixpoint_at_32k_edges() {
    const CHAINS: i64 = 8_192;
    const LEN: i64 = 4;
    let mut edges: Vec<(Tuple, f64)> = Vec::with_capacity((CHAINS * LEN) as usize);
    for c in 0..CHAINS {
        let base = c * (LEN + 2); // disjoint node ranges per chain
        for j in 0..LEN {
            edges.push((Tuple::ints(&[base + j, base + j + 1]), 0.5));
        }
    }
    edges.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(edges.len() >= 32_768, "the pin requires |E| >= 32k");

    let mut run = transitive_closure(&ProbMonoid, &edges).unwrap();
    let closure_rows = run.acc.len();

    // Bridge chain 0's last node into chain 1's first node.
    let bridge = (Tuple::ints(&[LEN, LEN + 2]), 0.25);
    edges.push(bridge.clone());
    edges.sort_by(|a, b| a.0.cmp(&b.0));
    let inserted = [bridge];
    let outcome = patch_inserts(
        &ProbMonoid,
        &mut run,
        &edges,
        &inserted,
        &inserted,
        StepShape::LeftLinear,
    )
    .unwrap();
    let patch = match outcome {
        PatchOutcome::Patched(p) => p,
        PatchOutcome::Rebuild => panic!("a pure bridge insert must patch in place"),
    };

    let fresh = transitive_closure(&ProbMonoid, &edges).unwrap();
    assert_eq!(run.acc, fresh.acc, "patched accumulator diverged");
    assert_eq!(
        run.deltas, fresh.deltas,
        "patched per-round deltas diverged"
    );
    assert_eq!(run.stats, fresh.stats, "patched stats diverged");
    assert_eq!(run.total.to_bits(), fresh.total.to_bits());

    assert!(
        patch.refolded_rows < closure_rows,
        "patch refolded {} of {} closure rows",
        patch.refolded_rows,
        closure_rows
    );
    assert!(
        patch.performed_add + patch.performed_mul < fresh.stats.total_ops(),
        "patch performed {} ops vs {} fresh",
        patch.performed_add + patch.performed_mul,
        fresh.stats.total_ops()
    );
}

/// A monoid whose ⊗ is not fixpoint-convergent is rejected with a
/// validation error — at the kernel and through the serving session —
/// instead of iterating forever.
#[test]
fn non_convergent_monoid_is_rejected_not_run() {
    let m = SatCountMonoid::new(2);
    let edges = vec![(Tuple::ints(&[1, 2]), m.one())];
    let err = transitive_closure(&m, &edges).unwrap_err();
    assert!(matches!(err, FixpointError::NonConvergentMonoid));

    let mut interner = Interner::new();
    let e = interner.intern("E");
    let facts = vec![(Fact::new(e, Tuple::ints(&[1, 2])), m.one())];
    let mut session: ServingSession<SatCountMonoid, MapRelation<SatVec>> =
        ServingSession::new(m, &interner, facts).unwrap();
    let err = session.query_fix(&interner, "E", None, None).unwrap_err();
    assert!(matches!(
        err,
        ServingError::Fixpoint(FixpointError::NonConvergentMonoid)
    ));
}
