//! Shared random-instance builders for the cross-crate test suites.
//!
//! The suites drive proptest over a `u64` seed and expand it into a
//! (query, database) instance with a seeded `StdRng` — keeping
//! shrinking meaningful (smaller seeds/sizes) while reusing the
//! library's own generators.

use hq_db::generate::{fill_relation, rng, ColumnDist};
use hq_db::{Database, Interner};
use hq_query::gen::random_hierarchical;
use hq_query::Query;
use rand::rngs::StdRng;
use rand::Rng;

/// A random hierarchical query plus a small random database over its
/// schema.
pub struct Instance {
    pub query: Query,
    pub interner: Interner,
    pub database: Database,
    pub rng: StdRng,
}

/// Builds a random hierarchical instance. `tuples_per_relation` and
/// `domain` stay small so the exponential oracles remain feasible.
pub fn random_instance(
    seed: u64,
    max_vars: usize,
    max_atoms: usize,
    tuples_per_relation: usize,
    domain: u64,
) -> Instance {
    let mut r = rng(seed);
    let query = random_hierarchical(&mut r, max_vars, max_atoms);
    let mut interner = Interner::new();
    let mut database = Database::new();
    for atom in query.atoms() {
        let rel = interner.intern(&atom.rel);
        let cols = vec![ColumnDist::Uniform { domain }; atom.vars.len()];
        let count = r.gen_range(0..=tuples_per_relation);
        fill_relation(&mut database, rel, &cols, count, &mut r);
    }
    Instance {
        query,
        interner,
        database,
        rng: r,
    }
}

/// Caps the total fact count by dropping excess facts (keeps oracle
/// costs bounded regardless of how generous the generator was).
#[allow(dead_code)]
pub fn cap_facts(db: &Database, max: usize) -> Database {
    let mut out = Database::new();
    for (rel, r) in db.relations() {
        out.declare(rel, r.arity());
    }
    for f in db.facts().into_iter().take(max) {
        out.insert(f);
    }
    out
}
