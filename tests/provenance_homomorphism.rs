//! Theorem 6.4, executed: the provenance 2-monoid is universal.
//!
//! For each problem we implement the homomorphism `φ` *independently*
//! (by brute force over the provenance formula — not by reusing the
//! monoid operators), run Algorithm 1 once over the provenance monoid
//! and once over the problem monoid, and check
//! `φ(provenance result) == direct result` on random hierarchical
//! instances. This is the paper's generic correctness proof turned
//! into a property test.

mod common;

use common::{cap_facts, random_instance};
use hq_arith::Natural;
use hq_db::Fact;
use hq_monoid::{
    BagMaxMonoid, BoolMonoid, CountMonoid, ProbMonoid, Prov, SatCountMonoid, TwoMonoid,
};
use hq_unify::{evaluate, provenance_tree};
use proptest::prelude::*;
use rand::Rng;

/// φ for the probability monoid: independent-events evaluation of the
/// formula (valid because algorithm outputs are decomposable).
fn phi_prob(tree: &Prov, probs: &[f64]) -> f64 {
    match tree {
        Prov::False => 0.0,
        Prov::True => 1.0,
        Prov::Leaf(s) => probs[*s as usize],
        Prov::Or(cs) => 1.0 - cs.iter().map(|c| 1.0 - phi_prob(c, probs)).product::<f64>(),
        Prov::And(cs) => cs.iter().map(|c| phi_prob(c, probs)).product(),
    }
}

/// φ for the BSM monoid, by brute force: best formula multiplicity per
/// budget over all repair subsets.
fn phi_bagmax(tree: &Prov, free: &[bool], theta: usize) -> Vec<u64> {
    let repair: Vec<usize> = (0..free.len()).filter(|&i| !free[i]).collect();
    let mut best = vec![0u64; theta + 1];
    for mask in 0u64..(1 << repair.len()) {
        let cost = mask.count_ones() as usize;
        if cost > theta {
            continue;
        }
        let mult = tree.multiplicity(&|s| {
            let i = s as usize;
            let selected = free[i]
                || repair
                    .iter()
                    .position(|&r| r == i)
                    .is_some_and(|p| mask >> p & 1 == 1);
            u64::from(selected)
        });
        for slot in best.iter_mut().take(theta + 1).skip(cost) {
            *slot = (*slot).max(mult);
        }
    }
    best
}

/// φ for the #Sat monoid, by brute force: subset counts per (k, bool).
fn phi_satcount(tree: &Prov, exo: &[bool]) -> (Vec<Natural>, Vec<Natural>) {
    let endo: Vec<usize> = (0..exo.len()).filter(|&i| !exo[i]).collect();
    let n = endo.len();
    let mut t = vec![Natural::zero(); n + 1];
    let mut f = vec![Natural::zero(); n + 1];
    for mask in 0u64..(1 << n) {
        let k = mask.count_ones() as usize;
        let value = tree.eval_bool(&|s| {
            let i = s as usize;
            exo[i]
                || endo
                    .iter()
                    .position(|&e| e == i)
                    .is_some_and(|p| mask >> p & 1 == 1)
        });
        if value {
            t[k].add_assign_ref(&Natural::one());
        } else {
            f[k].add_assign_ref(&Natural::one());
        }
    }
    (t, f)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// φ_bool: formula satisfiability == Boolean-monoid run.
    #[test]
    fn boolean_homomorphism(seed in 0u64..1_000_000) {
        let inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        let prov = provenance_tree(&inst.query, &inst.interner, &facts).unwrap();
        prop_assert!(prov.tree.is_decomposable(), "Lemma 6.3 violated: {}", prov.tree);
        let (direct, _) = evaluate(
            &BoolMonoid,
            &inst.query,
            &inst.interner,
            facts.iter().map(|f| (f.clone(), true)),
        )
        .unwrap();
        prop_assert_eq!(prov.tree.eval_bool(&|_| true), direct, "query {}", inst.query);
    }

    /// φ_count: formula multiplicity == counting-semiring run == the
    /// join engine's bag-set value.
    #[test]
    fn counting_homomorphism(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        let prov = provenance_tree(&inst.query, &inst.interner, &facts).unwrap();
        let (direct, _) = evaluate(
            &CountMonoid,
            &inst.query,
            &inst.interner,
            facts.iter().map(|f| (f.clone(), 1u64)),
        )
        .unwrap();
        prop_assert_eq!(prov.tree.multiplicity(&|_| 1), direct);
        let pattern = inst.query.to_pattern(&mut inst.interner);
        prop_assert_eq!(
            hq_db::count_matches(&inst.database, &pattern).unwrap(),
            direct,
            "query {}",
            inst.query
        );
    }

    /// φ_prob: independent-events formula probability == probability-
    /// monoid run.
    #[test]
    fn probability_homomorphism(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        let prov = provenance_tree(&inst.query, &inst.interner, &facts).unwrap();
        let probs: Vec<f64> =
            facts.iter().map(|_| inst.rng.gen_range(0.0..=1.0)).collect();
        let phi = phi_prob(&prov.tree, &probs);
        let (direct, _) = evaluate(
            &ProbMonoid,
            &inst.query,
            &inst.interner,
            facts
                .iter()
                .enumerate()
                .map(|(i, f)| (f.clone(), probs[i])),
        )
        .unwrap();
        prop_assert!((phi - direct).abs() < 1e-9, "query {} φ={phi} direct={direct}", inst.query);
    }

    /// φ_bagmax: brute-force best-multiplicity-per-budget == BSM-monoid
    /// run with the ψ annotations of Definition 5.10.
    #[test]
    fn bagmax_homomorphism(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let facts = cap_facts(&inst.database, 9).facts();
        let prov = provenance_tree(&inst.query, &inst.interner, &facts).unwrap();
        let free: Vec<bool> = facts.iter().map(|_| inst.rng.gen_bool(0.5)).collect();
        let theta = 3usize;
        let monoid = BagMaxMonoid::new(theta);
        let annotated: Vec<(Fact, _)> = facts
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let ann = if free[i] { monoid.one() } else { monoid.star() };
                (f.clone(), ann)
            })
            .collect();
        let (direct, _) =
            evaluate(&monoid, &inst.query, &inst.interner, annotated).unwrap();
        let phi = phi_bagmax(&prov.tree, &free, theta);
        prop_assert_eq!(direct.as_slice(), phi.as_slice(), "query {}", inst.query);
    }

    /// φ_#Sat: brute-force subset counts per (k, bool) == #Sat-monoid
    /// run with the ψ annotations of Definition 5.15 — including the
    /// false-side counts, which exercise the non-annihilating ⊗.
    #[test]
    fn satcount_homomorphism(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let facts = cap_facts(&inst.database, 9).facts();
        let prov = provenance_tree(&inst.query, &inst.interner, &facts).unwrap();
        let exo: Vec<bool> = facts.iter().map(|_| inst.rng.gen_bool(0.4)).collect();
        let n_endo = exo.iter().filter(|&&e| !e).count();
        let monoid = SatCountMonoid::new(n_endo);
        let annotated: Vec<(Fact, _)> = facts
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let ann = if exo[i] { monoid.one() } else { monoid.star() };
                (f.clone(), ann)
            })
            .collect();
        let (direct, _) =
            evaluate(&monoid, &inst.query, &inst.interner, annotated).unwrap();
        let (t, f) = phi_satcount(&prov.tree, &exo);
        prop_assert_eq!(&direct.t[..], &t[..], "true-side, query {}", inst.query);
        prop_assert_eq!(&direct.f[..], &f[..], "false-side, query {}", inst.query);
    }
}
