//! Differential testing of the multi-tenant serving server: N
//! concurrent reader sessions plus one writer over a single shared
//! `EncodedDb` and plan-node cache must be **indistinguishable** from a
//! serial replay of the same interleaved script. Snapshot isolation
//! makes that well-defined: every query is tagged with the epoch it
//! read (pinned, or current at query start), and the serial oracle
//! replays it against exactly that epoch's database state — so values
//! compare bit-for-bit on floats and the reported [`EngineStats`]
//! (⊕/⊗ op counts *and* support trajectory) must match fresh
//! evaluation exactly, on the ordered-map oracle, the sequential
//! columnar backend, the compressed block tier, and the sharded
//! backend at thread counts 2 and 8.
//!
//! Concurrent writers go through the group-commit pipeline
//! ([`Server::submit_batch`]): N writer threads' batches coalesce into
//! group commits, and the final state must equal a serial replay of
//! the batches in commit order — each [`CommitReceipt::seq`] tells the
//! oracle where its batch landed.
//!
//! Non-prop pins: zero pool-thread spawns per request after warmup,
//! the global memory governor bounding total cached rows across
//! sessions under eviction pressure, the epoch lifecycle edge cases (a
//! reader pinned across a novel-value dictionary extension, a writer
//! batch racing a session close, epoch retirement actually freeing
//! copy-on-write matrices), and the write pipeline (overlapping
//! batches coalescing into one refold + one epoch, enqueue-validation
//! ticket isolation, queue-full refuse/block backpressure).

mod common;

use common::random_instance;
use hq_db::{Database, Fact, Interner, Tuple};
use hq_monoid::ProbMonoid;
use hq_query::Query;
use hq_unify::engine::EngineStats;
use hq_unify::{
    evaluate_encoded, ColumnarRelation, CompressedColumnar, EncodedDb, MapRelation, Parallelism,
    Server, ServingBackend, ShardedColumnar,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Thread counts for the sharded servers.
const THREADS: [usize; 2] = [2, 8];

/// Concurrent reader sessions per server per round.
const READERS: usize = 3;

/// Concurrent writer threads in the group-commit rounds.
const WRITERS: usize = 3;

/// Fresh `evaluate_encoded` over a model state — the serial-replay
/// oracle each epoch-tagged query is compared against.
fn fresh_encoded(
    q: &Query,
    interner: &Interner,
    current: &BTreeMap<Fact, f64>,
) -> (f64, EngineStats) {
    let mut db = Database::new();
    for f in current.keys() {
        db.insert(f.clone());
    }
    let enc = EncodedDb::new(&db);
    evaluate_encoded(
        Parallelism::default(),
        &ProbMonoid,
        q,
        interner,
        &db,
        &enc,
        |sym, t| current[&Fact::new(sym, t.clone())],
    )
    .unwrap()
}

/// One interleaved round against one server: `READERS` pinned readers
/// evaluate the whole query family **while** the writer applies
/// `batch`; isolation means every pinned answer matches `expect` (the
/// serial replay of the pre-batch epoch) bit-for-bit. Panics inside
/// the scoped threads fail the test.
fn interleaved_round<R>(
    server: &Server<ProbMonoid, R>,
    interner: &Interner,
    family: &[Query],
    expect: &[(u64, EngineStats)],
    batch: &[(Fact, f64)],
) where
    R: ServingBackend<Ann = f64> + Send + Sync,
{
    // Pin before the writer starts: each reader holds the pre-batch
    // epoch for the whole round.
    let mut sessions: Vec<_> = (0..READERS)
        .map(|_| {
            let mut s = server.session();
            s.pin();
            s
        })
        .collect();
    std::thread::scope(|scope| {
        for (r, session) in sessions.iter_mut().enumerate() {
            let (family, expect) = (&family, &expect);
            scope.spawn(move || {
                for (q, (want_bits, want_stats)) in family.iter().zip(expect.iter()) {
                    let (got, stats) = session.query(interner, q).unwrap();
                    assert_eq!(
                        got.to_bits(),
                        *want_bits,
                        "reader {r} diverged from serial replay on {q}: {got}"
                    );
                    assert_eq!(&stats, want_stats, "reader {r} stats diverged on {q}");
                }
            });
        }
        scope.spawn(move || {
            server.update_batch(interner, batch).unwrap();
        });
    });
    drop(sessions);
    server.gc();
}

/// Post-round check: an unpinned session sees the post-batch epoch.
fn assert_current_state<R>(
    server: &Server<ProbMonoid, R>,
    interner: &Interner,
    family: &[Query],
    current: &BTreeMap<Fact, f64>,
) where
    R: ServingBackend<Ann = f64>,
{
    let session = server.session();
    for q in family {
        let (want, want_stats) = fresh_encoded(q, interner, current);
        let (got, stats) = session.query(interner, q).unwrap();
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "current epoch diverged from fresh evaluation on {q}"
        );
        assert_eq!(stats, want_stats, "current-epoch stats diverged on {q}");
    }
}

/// The full query plus every leading atom prefix (removing trailing
/// atoms of a hierarchical query preserves the hierarchy property),
/// the full query repeated so at least one evaluation per reader is a
/// pure cache hit on a sub-plan another session materialised.
fn query_family(q: &Query) -> Vec<Query> {
    let mut family = vec![q.clone()];
    for len in 1..q.atom_count() {
        let atoms: Vec<(String, Vec<String>)> = q.atoms()[..len]
            .iter()
            .map(|a| {
                (
                    a.rel.clone(),
                    a.vars.iter().map(|&v| q.var_name(v).to_owned()).collect(),
                )
            })
            .collect();
        let borrowed: Vec<(&str, Vec<&str>)> = atoms
            .iter()
            .map(|(r, vs)| (r.as_str(), vs.iter().map(String::as_str).collect()))
            .collect();
        let specs: Vec<(&str, &[&str])> =
            borrowed.iter().map(|(r, vs)| (*r, vs.as_slice())).collect();
        family.push(Query::new(&specs).expect("atom subsets stay hierarchical"));
    }
    family.push(q.clone());
    family
}

/// The query's relations as (symbol, arity), for generating updates.
fn query_rels(q: &Query, interner: &Interner) -> Vec<(hq_db::Sym, usize)> {
    q.atoms()
        .iter()
        .filter_map(|a| interner.get(&a.rel).map(|s| (s, a.vars.len())))
        .collect()
}

/// A random update batch: drifts, deletes (weight 0 under the
/// probability monoid), and novel facts — half carrying domain values
/// outside the original instance to force dictionary extensions.
fn random_batch(
    rng: &mut StdRng,
    facts: &[Fact],
    rels: &[(hq_db::Sym, usize)],
    domain: i64,
) -> Vec<(Fact, f64)> {
    let len = rng.gen_range(1..=3);
    (0..len)
        .map(|_| {
            let novel = rng.gen_bool(0.3) || facts.is_empty();
            let fact = if novel {
                let (rel, arity) = rels[rng.gen_range(0..rels.len())];
                let hi = if rng.gen_bool(0.5) {
                    domain
                } else {
                    domain * 4 + 7
                };
                let vals: Vec<i64> = (0..arity).map(|_| rng.gen_range(0..=hi)).collect();
                Fact::new(rel, Tuple::ints(&vals))
            } else {
                facts[rng.gen_range(0..facts.len())].clone()
            };
            let weight = if rng.gen_bool(0.25) {
                0.0 // delete under ProbMonoid
            } else {
                rng.gen_range(0.01..=1.0)
            };
            (fact, weight)
        })
        .collect()
}

fn apply_to_model(current: &mut BTreeMap<Fact, f64>, batch: &[(Fact, f64)]) {
    for (fact, w) in batch {
        if *w == 0.0 {
            current.remove(fact);
        } else {
            current.insert(fact.clone(), *w);
        }
    }
}

/// Drives the interleaved N-reader/1-writer schedule against one
/// server and the serial oracle for `rounds` rounds.
fn drive<R>(
    server: &Server<ProbMonoid, R>,
    interner: &Interner,
    family: &[Query],
    mut current: BTreeMap<Fact, f64>,
    batches: &[Vec<(Fact, f64)>],
) where
    R: ServingBackend<Ann = f64> + Send + Sync,
{
    for batch in batches {
        let expect: Vec<(u64, EngineStats)> = family
            .iter()
            .map(|q| {
                let (v, s) = fresh_encoded(q, interner, &current);
                (v.to_bits(), s)
            })
            .collect();
        interleaved_round(server, interner, family, &expect, batch);
        apply_to_model(&mut current, batch);
        assert_current_state(server, interner, family, &current);
    }
}

/// One concurrent-writer round: `READERS` sessions pinned at the
/// pre-round epoch evaluate the family **while** `WRITERS` threads
/// race their batches through the group-commit queue. Pinned answers
/// must match the pre-round serial replay bit-for-bit; afterwards the
/// final state must equal the batches replayed serially in **commit
/// order** (the receipts' `seq`), whatever grouping the race produced.
fn drive_concurrent<R>(
    server: &Server<ProbMonoid, R>,
    interner: &Interner,
    family: &[Query],
    mut current: BTreeMap<Fact, f64>,
    batches: &[Vec<(Fact, f64)>],
) where
    R: ServingBackend<Ann = f64> + Send + Sync,
{
    let expect: Vec<(u64, EngineStats)> = family
        .iter()
        .map(|q| {
            let (v, s) = fresh_encoded(q, interner, &current);
            (v.to_bits(), s)
        })
        .collect();
    let mut sessions: Vec<_> = (0..READERS)
        .map(|_| {
            let mut s = server.session();
            s.pin();
            s
        })
        .collect();
    let order: std::sync::Mutex<Vec<(u64, usize)>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (r, session) in sessions.iter_mut().enumerate() {
            let (family, expect) = (&family, &expect);
            scope.spawn(move || {
                for (q, (want_bits, want_stats)) in family.iter().zip(expect.iter()) {
                    let (got, stats) = session.query(interner, q).unwrap();
                    assert_eq!(
                        got.to_bits(),
                        *want_bits,
                        "reader {r} diverged from serial replay on {q}: {got}"
                    );
                    assert_eq!(&stats, want_stats, "reader {r} stats diverged on {q}");
                }
            });
        }
        for (b, batch) in batches.iter().enumerate() {
            let order = &order;
            scope.spawn(move || {
                let receipt = server.commit_batch(interner, batch).unwrap();
                order.lock().unwrap().push((receipt.seq, b));
            });
        }
    });
    drop(sessions);
    server.gc();
    // Commit-order-determinised serial replay: groups drain the queue
    // FIFO and coalesce last-write-wins, so replaying the batches in
    // arrival-sequence order reproduces the committed state exactly.
    let mut order = order.into_inner().unwrap();
    order.sort_unstable();
    for &(_, b) in &order {
        apply_to_model(&mut current, &batches[b]);
    }
    assert_current_state(server, interner, family, &current);
    let ws = server.write_stats();
    assert_eq!(
        ws.batches_committed,
        batches.len() as u64,
        "every submitted batch must be committed exactly once"
    );
    assert!(
        ws.commits >= 1 && ws.commits <= batches.len() as u64,
        "{} commits for {} batches",
        ws.commits,
        batches.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The acceptance bar: interleaved N-reader/1-writer schedules on
    /// every backend × thread count, every epoch-tagged query
    /// bit-identical (value, op counts, support trajectory) to the
    /// serial replay.
    #[test]
    fn interleaved_readers_match_serial_replay(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let current: BTreeMap<Fact, f64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(0.01..=1.0)))
            .collect();
        let tid: Vec<(Fact, f64)> = current.clone().into_iter().collect();
        let batches: Vec<Vec<(Fact, f64)>> = (0..3)
            .map(|_| random_batch(&mut inst.rng, &facts, &rels, 3))
            .collect();

        let server: Server<ProbMonoid, MapRelation<f64>> =
            Server::new(ProbMonoid, &inst.interner, tid.iter().cloned()).unwrap();
        drive(&server, &inst.interner, &family, current.clone(), &batches);

        let server: Server<ProbMonoid, ColumnarRelation<f64>> =
            Server::new(ProbMonoid, &inst.interner, tid.iter().cloned()).unwrap();
        drive(&server, &inst.interner, &family, current.clone(), &batches);

        let server: Server<ProbMonoid, CompressedColumnar<f64>> =
            Server::new(ProbMonoid, &inst.interner, tid.iter().cloned()).unwrap();
        drive(&server, &inst.interner, &family, current.clone(), &batches);

        for &t in &THREADS {
            let server: Server<ProbMonoid, ShardedColumnar<f64>> = Server::with_parallelism(
                ProbMonoid,
                &inst.interner,
                tid.iter().cloned(),
                Parallelism::fine_grained(t),
            )
            .unwrap();
            drive(&server, &inst.interner, &family, current.clone(), &batches);
        }
    }

    /// Group-commit acceptance bar: `WRITERS` threads racing batches
    /// through the commit queue while pinned readers evaluate, on
    /// every backend × thread count — pinned reads bit-identical to
    /// the pre-round replay, the final state bit-identical (values,
    /// op counts, support trajectories) to a commit-order serial
    /// replay, every batch committed exactly once.
    #[test]
    fn concurrent_writers_match_commit_order_replay(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let current: BTreeMap<Fact, f64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(0.01..=1.0)))
            .collect();
        let tid: Vec<(Fact, f64)> = current.clone().into_iter().collect();
        let batches: Vec<Vec<(Fact, f64)>> = (0..WRITERS)
            .map(|_| random_batch(&mut inst.rng, &facts, &rels, 3))
            .collect();

        let server: Server<ProbMonoid, MapRelation<f64>> =
            Server::new(ProbMonoid, &inst.interner, tid.iter().cloned()).unwrap();
        drive_concurrent(&server, &inst.interner, &family, current.clone(), &batches);

        let server: Server<ProbMonoid, ColumnarRelation<f64>> =
            Server::new(ProbMonoid, &inst.interner, tid.iter().cloned()).unwrap();
        drive_concurrent(&server, &inst.interner, &family, current.clone(), &batches);

        let server: Server<ProbMonoid, CompressedColumnar<f64>> =
            Server::new(ProbMonoid, &inst.interner, tid.iter().cloned()).unwrap();
        drive_concurrent(&server, &inst.interner, &family, current.clone(), &batches);

        for &t in &THREADS {
            let server: Server<ProbMonoid, ShardedColumnar<f64>> = Server::with_parallelism(
                ProbMonoid,
                &inst.interner,
                tid.iter().cloned(),
                Parallelism::fine_grained(t),
            )
            .unwrap();
            drive_concurrent(&server, &inst.interner, &family, current.clone(), &batches);
        }
    }
}

/// Shared two-relation instance for the non-prop pins: `Q() :- E(X,Y),
/// F(Y,Z)` over weighted facts.
fn small_instance() -> (Interner, Vec<(Fact, f64)>, Query) {
    let mut interner = Interner::new();
    let e = interner.intern("E");
    let f = interner.intern("F");
    let tid = vec![
        (Fact::new(e, Tuple::ints(&[1, 2])), 0.5),
        (Fact::new(e, Tuple::ints(&[3, 4])), 0.25),
        (Fact::new(f, Tuple::ints(&[2, 3])), 0.5),
        (Fact::new(f, Tuple::ints(&[4, 5])), 0.125),
    ];
    let q = Query::new(&[("E", &["X", "Y"]), ("F", &["Y", "Z"])]).unwrap();
    (interner, tid, q)
}

fn model_of(tid: &[(Fact, f64)]) -> BTreeMap<Fact, f64> {
    tid.iter().cloned().collect()
}

/// Zero pool-thread spawns per request after warmup: the sharded
/// server fans reader evaluation over the persistent worker pool, and
/// once the pool is warmed to the configured degree, serving any
/// number of concurrent queries spawns no further threads.
#[test]
fn no_pool_spawns_per_request_after_warmup() {
    let (interner, tid, q) = small_instance();
    let par = Parallelism::fine_grained(4);
    let server: Server<ProbMonoid, ShardedColumnar<f64>> =
        Server::with_parallelism(ProbMonoid, &interner, tid.iter().cloned(), par).unwrap();
    // One warm round: materialise every node once.
    let warm = server.session();
    warm.query(&interner, &q).unwrap();
    let spawned = hq_unify::pool::spawn_count();
    let e = interner.get("E").unwrap();
    let (srv, itr, query) = (&server, &interner, &q);
    for round in 0..3u64 {
        let mut sessions: Vec<_> = (0..READERS).map(|_| srv.session()).collect();
        for s in &mut sessions {
            s.pin();
        }
        std::thread::scope(|scope| {
            for session in &sessions {
                scope.spawn(move || {
                    session.query(itr, query).unwrap();
                });
            }
            let batch = vec![(Fact::new(e, Tuple::ints(&[1, 2])), 0.3 + 0.1 * round as f64)];
            scope.spawn(move || {
                srv.update_batch(itr, &batch).unwrap();
            });
        });
    }
    assert_eq!(
        hq_unify::pool::spawn_count(),
        spawned,
        "pool spawned threads after warmup"
    );
}

/// The global memory governor: with many sessions hammering a small
/// `set_global_cache_rows` budget, the total materialised rows across
/// the shared cache stay bounded after every query, evictions are
/// observable, and answers remain bit-identical to fresh evaluation.
#[test]
fn global_governor_bounds_rows_across_sessions() {
    let (interner, tid, q) = small_instance();
    let family = query_family(&q);
    let server: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    let budget = 3usize;
    server.set_global_cache_rows(Some(budget));
    let current = model_of(&tid);
    for _ in 0..2 {
        for q in &family {
            for _ in 0..READERS {
                let session = server.session();
                let (want, want_stats) = fresh_encoded(q, &interner, &current);
                let (got, stats) = session.query(&interner, q).unwrap();
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "evicting path diverged on {q}"
                );
                assert_eq!(stats, want_stats, "evicting stats diverged on {q}");
                assert!(
                    server.materialised_rows() <= budget,
                    "governor budget violated: {} rows > {budget}",
                    server.materialised_rows()
                );
            }
        }
    }
    assert!(server.evictions() > 0, "pressure produced no evictions");
}

/// Epoch lifecycle: a reader pinned across a batch that extends the
/// value dictionary (novel domain value) keeps serving the old
/// epoch's answers bit-identically, while new sessions see the new
/// state — on every backend.
#[test]
fn reader_pinned_across_dictionary_extension() {
    fn check<R: ServingBackend<Ann = f64>>(par: Parallelism) {
        let (interner, tid, q) = small_instance();
        let server: Server<ProbMonoid, R> =
            Server::with_parallelism(ProbMonoid, &interner, tid.iter().cloned(), par).unwrap();
        let mut pinned = server.session();
        pinned.pin();
        let before = model_of(&tid);
        let (want_before, stats_before) = fresh_encoded(&q, &interner, &before);
        // Novel values 77/78 never appeared in the seed database: the
        // writer's refresh extends the shared dictionary and renumbers
        // codes, while the pinned epoch keeps its own encoding.
        let e = interner.get("E").unwrap();
        let batch = vec![(Fact::new(e, Tuple::ints(&[77, 78])), 0.5)];
        server.update_batch(&interner, &batch).unwrap();
        let (got, stats) = pinned.query(&interner, &q).unwrap();
        assert_eq!(
            got.to_bits(),
            want_before.to_bits(),
            "pinned reader leaked the dictionary extension"
        );
        assert_eq!(stats, stats_before, "pinned stats diverged");
        let mut after = before.clone();
        apply_to_model(&mut after, &batch);
        let (want_after, stats_after) = fresh_encoded(&q, &interner, &after);
        let fresh = server.session();
        let (got, stats) = fresh.query(&interner, &q).unwrap();
        assert_eq!(
            got.to_bits(),
            want_after.to_bits(),
            "new session missed the batch"
        );
        assert_eq!(stats, stats_after, "new-session stats diverged");
        drop(pinned);
        server.gc();
        assert_eq!(server.live_epochs(), 1, "retired epoch survived gc");
    }
    check::<MapRelation<f64>>(Parallelism::default());
    check::<ColumnarRelation<f64>>(Parallelism::default());
    check::<CompressedColumnar<f64>>(Parallelism::default());
    for &t in &THREADS {
        check::<ShardedColumnar<f64>>(Parallelism::fine_grained(t));
    }
}

/// Epoch lifecycle: a writer batch racing a session close. With
/// `max_live_epochs` at the floor (2), every batch must wait for the
/// previous epoch to retire — the pinned reader dropping mid-write is
/// exactly the retirement signal the admission control blocks on, so
/// the writer must neither deadlock nor skip the wait.
#[test]
fn writer_batch_races_session_close() {
    let (interner, tid, q) = small_instance();
    let server: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    server.set_max_live_epochs(Some(2));
    let e = interner.get("E").unwrap();
    for round in 0..4u64 {
        let mut pinned = server.session();
        pinned.pin();
        pinned.query(&interner, &q).unwrap();
        std::thread::scope(|scope| {
            // The reader drops its pin while the writer's admission
            // check may already be waiting on exactly that epoch.
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                drop(pinned);
            });
            scope.spawn(|| {
                let w = 0.3 + 0.05 * round as f64;
                let batch = vec![(Fact::new(e, Tuple::ints(&[1, 2])), w)];
                server.update_batch(&interner, &batch).unwrap();
            });
        });
    }
    server.gc();
    assert_eq!(
        server.live_epochs(),
        1,
        "epochs leaked across racing closes"
    );
    assert_eq!(server.current_epoch(), 4);
}

/// Epoch lifecycle: retirement actually frees the copy-on-write
/// matrices. A pinned reader forces the old epoch's nodes to stay
/// materialised alongside the new epoch's; dropping the pin and
/// collecting must shrink `materialised_rows`/`storage_bytes` back to
/// a single epoch's footprint.
#[test]
fn epoch_retirement_frees_copy_on_write_matrices() {
    let (interner, tid, q) = small_instance();
    let server: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    let mut pinned = server.session();
    pinned.pin();
    pinned.query(&interner, &q).unwrap();
    // Touch E: the old epoch's E-scan (and everything fed by it) now
    // differs from the new epoch's, so both copies are materialised
    // while the pin lives.
    let e = interner.get("E").unwrap();
    let batch = vec![(Fact::new(e, Tuple::ints(&[1, 2])), 0.9)];
    server.update_batch(&interner, &batch).unwrap();
    let fresh = server.session();
    fresh.query(&interner, &q).unwrap();
    pinned.query(&interner, &q).unwrap();
    let rows_both = server.materialised_rows();
    let bytes_both = server.storage_bytes();
    assert!(
        server.live_epochs() >= 2,
        "pin failed to keep the old epoch live"
    );
    drop(pinned);
    server.gc();
    let rows_after = server.materialised_rows();
    let bytes_after = server.storage_bytes();
    assert!(
        rows_after < rows_both,
        "retirement freed no rows ({rows_both} -> {rows_after})"
    );
    assert!(
        bytes_after <= bytes_both,
        "retirement grew storage ({bytes_both} -> {bytes_after})"
    );
    assert_eq!(server.live_epochs(), 1);
    // The surviving epoch still serves correctly after the purge.
    let mut after = model_of(&tid);
    apply_to_model(&mut after, &batch);
    let (want, _) = fresh_encoded(&q, &interner, &after);
    let (got, _) = fresh.query(&interner, &q).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());
}

/// Cross-session sharing: a sub-plan materialised by one session is a
/// zero-op cache hit for every other session of the same epoch.
#[test]
fn cache_hits_are_zero_op_across_sessions() {
    let (interner, tid, q) = small_instance();
    let server: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    let first = server.session();
    first.query(&interner, &q).unwrap();
    let performed = server.ops_performed();
    assert!(performed > 0, "first evaluation performed no ops");
    for _ in 0..READERS {
        let other = server.session();
        let (_, stats) = other.query(&interner, &q).unwrap();
        // Replayed stats still report the full cost...
        assert!(stats.add_ops + stats.mul_ops > 0);
    }
    // ...but no new monoid work was performed by any of them.
    assert_eq!(
        server.ops_performed(),
        performed,
        "cache hits across sessions performed monoid ops"
    );
}

/// Group coalescing: three overlapping single-key batches submitted
/// together commit as **one** group — one epoch publication and one
/// refold of the shared dirty key at its final value — and must beat a
/// serial per-batch replay on both epoch publishes and writer monoid
/// ops while producing the bit-identical final state.
#[test]
fn overlapping_batches_coalesce_into_one_refold_and_one_epoch() {
    let (interner, tid, q) = small_instance();
    let grouped: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    let serial: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    // Always patch (never rebuild): the comparison is refold passes.
    grouped.set_patch_fraction(f64::INFINITY);
    serial.set_patch_fraction(f64::INFINITY);
    // Warm both caches so the committer has nodes to delta-patch.
    grouped.session().query(&interner, &q).unwrap();
    serial.session().query(&interner, &q).unwrap();
    let e = interner.get("E").unwrap();
    let batches: Vec<Vec<(Fact, f64)>> = [0.3, 0.6, 0.9]
        .iter()
        .map(|&w| vec![(Fact::new(e, Tuple::ints(&[1, 2])), w)])
        .collect();
    let grouped_ops_before = grouped.writer_ops_performed();
    let tickets: Vec<_> = batches
        .iter()
        .map(|b| grouped.submit_batch(&interner, b).unwrap())
        .collect();
    assert_eq!(grouped.flush_writes(&interner), 3);
    for ticket in tickets {
        let receipt = ticket.wait(&interner).unwrap();
        assert_eq!(receipt.epoch, 1, "the group published more than one epoch");
        assert_eq!(receipt.group_batches, 3);
    }
    let grouped_ops = grouped.writer_ops_performed() - grouped_ops_before;
    let serial_ops_before = serial.writer_ops_performed();
    for b in &batches {
        serial.update_batch(&interner, b).unwrap();
    }
    let serial_ops = serial.writer_ops_performed() - serial_ops_before;
    assert_eq!(grouped.current_epoch(), 1, "grouped: one epoch publish");
    assert_eq!(serial.current_epoch(), 3, "serial: one publish per batch");
    assert!(
        grouped_ops < serial_ops,
        "coalesced refold ({grouped_ops} ops) must beat per-batch refolds ({serial_ops} ops)"
    );
    let ws = grouped.write_stats();
    assert_eq!(ws.commits, 1);
    assert_eq!(ws.batches_committed, 3);
    assert_eq!(ws.max_group, 3);
    assert_eq!(ws.queue_high_water, 3);
    assert_eq!(ws.queue_depth, 0);
    // Both servers end bit-identical to the fresh-evaluation oracle.
    let mut model = model_of(&tid);
    for b in &batches {
        apply_to_model(&mut model, b);
    }
    let family = query_family(&q);
    assert_current_state(&grouped, &interner, &family, &model);
    assert_current_state(&serial, &interner, &family, &model);
}

/// Ticket error isolation: a batch failing enqueue-time arity
/// validation errors on its **own** ticket — immediately, before it
/// can join a group — and the valid batches of the same burst commit
/// untouched. Pending declarations count: a batch declaring a new
/// relation makes a conflicting later submission invalid even before
/// the declaration commits.
#[test]
fn invalid_batch_is_rejected_at_enqueue_without_poisoning_the_group() {
    let (mut interner, tid, q) = small_instance();
    let g = interner.intern("G");
    let server: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    let e = interner.get("E").unwrap();
    let good = server
        .submit_batch(&interner, &[(Fact::new(e, Tuple::ints(&[9, 9])), 0.7)])
        .unwrap();
    // E is declared at arity 2: a 3-tuple insert is rejected here.
    let err = server
        .submit_batch(&interner, &[(Fact::new(e, Tuple::ints(&[1, 2, 3])), 0.4)])
        .unwrap_err();
    assert!(matches!(err, hq_unify::ServingError::Annotate(_)), "{err}");
    // All-or-nothing per ticket: one bad fact rejects the whole batch.
    let err = server
        .submit_batch(
            &interner,
            &[
                (Fact::new(e, Tuple::ints(&[8, 8])), 0.2),
                (Fact::new(e, Tuple::ints(&[1, 2, 3])), 0.4),
            ],
        )
        .unwrap_err();
    assert!(matches!(err, hq_unify::ServingError::Annotate(_)), "{err}");
    // A pending (uncommitted) declaration already binds: G enters the
    // registry at arity 2 here...
    let declares = server
        .submit_batch(&interner, &[(Fact::new(g, Tuple::ints(&[1, 1])), 0.5)])
        .unwrap();
    // ...so a conflicting arity-1 insert is invalid at enqueue.
    let err = server
        .submit_batch(&interner, &[(Fact::new(g, Tuple::ints(&[1])), 0.5)])
        .unwrap_err();
    assert!(matches!(err, hq_unify::ServingError::Annotate(_)), "{err}");
    // Deletes stay exempt, exactly as in the serial session.
    let harmless_delete = server
        .submit_batch(&interner, &[(Fact::new(e, Tuple::ints(&[1, 2, 3])), 0.0)])
        .unwrap();
    assert_eq!(server.flush_writes(&interner), 3);
    let receipt = good.wait(&interner).unwrap();
    assert_eq!(receipt.epoch, 1);
    assert_eq!(receipt.group_batches, 3);
    declares.wait(&interner).unwrap();
    harmless_delete.wait(&interner).unwrap();
    let ws = server.write_stats();
    assert_eq!(ws.rejected_invalid, 3);
    assert_eq!(ws.commits, 1);
    assert_eq!(ws.batches_committed, 3);
    // The surviving writes landed; the state matches fresh evaluation.
    let mut model = model_of(&tid);
    model.insert(Fact::new(e, Tuple::ints(&[9, 9])), 0.7);
    model.insert(Fact::new(g, Tuple::ints(&[1, 1])), 0.5);
    assert_current_state(&server, &interner, &query_family(&q), &model);
}

/// Queue-full backpressure, refuse policy: with the commit queue
/// bounded at one pending batch, a second submission fails fast with
/// `WriteQueueFull`, the rejection is counted, and the queued batch
/// commits normally once a waiter drains the queue.
#[test]
fn full_queue_refuses_and_counts_under_refuse_policy() {
    let (interner, tid, _q) = small_instance();
    let server: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    server.set_write_queue(Some(1), hq_unify::WritePolicy::Refuse);
    let e = interner.get("E").unwrap();
    let queued = server
        .submit_batch(&interner, &[(Fact::new(e, Tuple::ints(&[1, 2])), 0.9)])
        .unwrap();
    let err = server
        .submit_batch(&interner, &[(Fact::new(e, Tuple::ints(&[3, 4])), 0.8)])
        .unwrap_err();
    assert!(
        matches!(err, hq_unify::ServingError::WriteQueueFull { pending: 1 }),
        "{err}"
    );
    let ws = server.write_stats();
    assert_eq!(ws.rejected_full, 1);
    assert_eq!(ws.queue_depth, 1);
    assert_eq!(ws.queue_high_water, 1);
    let receipt = queued.wait(&interner).unwrap();
    assert_eq!(receipt.epoch, 1);
    assert_eq!(server.write_stats().queue_depth, 0);
    // Space freed: the queue admits again.
    server
        .update_batch(&interner, &[(Fact::new(e, Tuple::ints(&[3, 4])), 0.8)])
        .unwrap();
    assert_eq!(server.current_epoch(), 2);
}

/// Queue-full backpressure, block policy: a submitter over the bound
/// parks until the committer drains space free, then commits normally
/// — no refusal, no lost batch, no deadlock.
#[test]
fn full_queue_blocks_then_admits_under_block_policy() {
    let (interner, tid, _q) = small_instance();
    let server: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    server.set_write_queue(Some(1), hq_unify::WritePolicy::Block);
    let e = interner.get("E").unwrap();
    let queued = server
        .submit_batch(&interner, &[(Fact::new(e, Tuple::ints(&[1, 2])), 0.9)])
        .unwrap();
    std::thread::scope(|scope| {
        let blocked = scope.spawn(|| {
            // Over the bound: parks on the space condvar until the
            // flush below drains the queue, then commits normally.
            server
                .update_batch(&interner, &[(Fact::new(e, Tuple::ints(&[3, 4])), 0.8)])
                .unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(
            !blocked.is_finished(),
            "submitter failed to block on the full queue"
        );
        assert_eq!(server.flush_writes(&interner), 1);
    });
    let receipt = queued.wait(&interner).unwrap();
    assert_eq!(receipt.epoch, 1);
    assert_eq!(server.current_epoch(), 2, "the blocked batch committed");
    let ws = server.write_stats();
    assert_eq!(ws.rejected_full, 0);
    assert_eq!(ws.batches_committed, 2);
    let mut model = model_of(&tid);
    model.insert(Fact::new(e, Tuple::ints(&[1, 2])), 0.9);
    model.insert(Fact::new(e, Tuple::ints(&[3, 4])), 0.8);
    let q = Query::new(&[("E", &["X", "Y"]), ("F", &["Y", "Z"])]).unwrap();
    assert_current_state(&server, &interner, &[q], &model);
}
