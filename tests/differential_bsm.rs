//! Differential testing of Bag-Set Maximization: the unifying
//! algorithm's whole budget curve vs repair-subset enumeration on
//! random hierarchical instances (Theorem 5.11's correctness,
//! empirically).

mod common;

use common::{cap_facts, random_instance};
use hq_db::generate::{fill_relation, ColumnDist};
use hq_db::Database;
use hq_unify::bsm;
use proptest::prelude::*;
use rand::Rng;

/// Builds a repair database over the same schema as the instance.
fn repair_db(inst: &mut common::Instance, per_relation: usize, domain: u64) -> Database {
    let mut d_r = Database::new();
    let atoms: Vec<(String, usize)> = inst
        .query
        .atoms()
        .iter()
        .map(|a| (a.rel.clone(), a.vars.len()))
        .collect();
    for (rel_name, arity) in atoms {
        let rel = inst.interner.intern(&rel_name);
        let cols = vec![ColumnDist::Uniform { domain }; arity];
        let count = inst.rng.gen_range(0..=per_relation);
        fill_relation(&mut d_r, rel, &cols, count, &mut inst.rng);
    }
    d_r
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 80, ..ProptestConfig::default() })]

    /// The entire budget curve matches brute force at every θ' ≤ θ.
    #[test]
    fn curve_matches_bruteforce(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let d = cap_facts(&inst.database, 8);
        let d_r = cap_facts(&repair_db(&mut inst, 3, 3), 8);
        let theta = 4usize;
        let sol = bsm::maximize(&inst.query, &inst.interner, &d, &d_r, theta).unwrap();
        for t in 0..=theta {
            let brute = hq_baselines::maximize_bruteforce(
                &inst.query,
                &inst.interner,
                &d,
                &d_r,
                t,
            );
            prop_assert_eq!(
                sol.value_at(t),
                brute.optimum,
                "query {} θ'={} curve {:?}",
                inst.query,
                t,
                sol.curve
            );
        }
    }

    /// The curve is monotone and stabilises once every useful repair
    /// fact is bought.
    #[test]
    fn curve_monotone_and_saturating(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let d = cap_facts(&inst.database, 8);
        let d_r = cap_facts(&repair_db(&mut inst, 3, 3), 8);
        let candidates = d_r.difference(&d).len();
        let theta = candidates + 2;
        let sol = bsm::maximize(&inst.query, &inst.interner, &d, &d_r, theta).unwrap();
        prop_assert!(sol.curve.is_monotone());
        // Beyond |D_r \ D| extra budget cannot help.
        prop_assert_eq!(sol.value_at(candidates), sol.value_at(theta));
    }

    /// θ = 0 equals the plain bag-set value Q(D).
    #[test]
    fn zero_budget_is_plain_count(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let d = inst.database.clone();
        let d_r = repair_db(&mut inst, 3, 3);
        let sol = bsm::maximize(&inst.query, &inst.interner, &d, &d_r, 0).unwrap();
        let pattern = inst.query.to_pattern(&mut inst.interner);
        prop_assert_eq!(
            sol.optimum(),
            hq_db::count_matches(&d, &pattern).unwrap(),
            "query {}",
            inst.query
        );
    }

    /// Adding the whole repair database equals Q(D ∪ D_r).
    #[test]
    fn full_budget_is_union_count(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let d = cap_facts(&inst.database, 8);
        let d_r = cap_facts(&repair_db(&mut inst, 3, 3), 8);
        let theta = d_r.fact_count() + 1;
        let sol = bsm::maximize(&inst.query, &inst.interner, &d, &d_r, theta).unwrap();
        let union = d.union(&d_r);
        let pattern = inst.query.to_pattern(&mut inst.interner);
        prop_assert_eq!(
            sol.optimum(),
            hq_db::count_matches(&union, &pattern).unwrap(),
            "query {}",
            inst.query
        );
    }

    /// Witness extraction: `maximize_with_repair` returns, for every
    /// budget, a repair that is (a) within budget, (b) drawn from
    /// `D_r \ D`, and (c) *actually achieves* the claimed optimum when
    /// materialised and re-counted.
    #[test]
    fn extracted_repairs_are_valid_and_optimal(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let d = cap_facts(&inst.database, 8);
        let d_r = cap_facts(&repair_db(&mut inst, 3, 3), 8);
        let theta = 3usize;
        let plain = bsm::maximize(&inst.query, &inst.interner, &d, &d_r, theta).unwrap();
        let with = bsm::maximize_with_repair(&inst.query, &inst.interner, &d, &d_r, theta)
            .unwrap();
        let pattern = inst.query.to_pattern(&mut inst.interner);
        for t in 0..=theta {
            prop_assert_eq!(plain.value_at(t), with.value_at(t), "values diverged at {}", t);
            let repair = with.repair_at(t);
            prop_assert!(repair.len() <= t, "budget exceeded at {}", t);
            let mut repaired = d.clone();
            for f in &repair {
                prop_assert!(d_r.contains(f) && !d.contains(f), "invalid repair fact");
                repaired.insert(f.clone());
            }
            prop_assert_eq!(
                hq_db::count_matches(&repaired, &pattern).unwrap(),
                with.value_at(t),
                "repair does not achieve the optimum at budget {} (query {})",
                t,
                inst.query
            );
        }
    }

    /// Expected bag-set count: the semiring instantiation equals the
    /// definitional sum over possible worlds of Q(world), computed by
    /// exhaustive enumeration.
    #[test]
    fn expected_count_matches_world_average(seed in 0u64..1_000_000) {
        use rand::Rng;
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let facts = cap_facts(&inst.database, 8).facts();
        let tid: Vec<(hq_db::Fact, f64)> = facts
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f, p)
            })
            .collect();
        let unified =
            hq_unify::pqe::expected_count(&inst.query, &inst.interner, &tid).unwrap();
        // Definitional: Σ_worlds P(world) · Q(world).
        let pattern = inst.query.to_pattern(&mut inst.interner);
        let mut expected = 0.0;
        for mask in 0u64..(1 << tid.len()) {
            let mut db = hq_db::Database::new();
            let mut p_world = 1.0;
            for (i, (f, p)) in tid.iter().enumerate() {
                db.declare(f.rel, f.tuple.arity());
                if mask >> i & 1 == 1 {
                    db.insert(f.clone());
                    p_world *= p;
                } else {
                    p_world *= 1.0 - p;
                }
            }
            expected +=
                p_world * hq_db::count_matches(&db, &pattern).unwrap() as f64;
        }
        prop_assert!(
            (unified - expected).abs() < 1e-9 * (1.0 + expected.abs()),
            "query {} unified={unified} worlds={expected}",
            inst.query
        );
    }

    /// The engine's support never grows during BSM runs (Lemma 6.6).
    #[test]
    fn support_never_grows(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let d = inst.database.clone();
        let d_r = repair_db(&mut inst, 4, 3);
        let sol = bsm::maximize(&inst.query, &inst.interner, &d, &d_r, 3).unwrap();
        prop_assert!(sol.stats.support_never_grew(), "{:?}", sol.stats.support_sizes);
    }
}
