//! Property tests for the shared script grammar (`hq_unify::script`):
//! rendering a parsed command and re-parsing it yields the same
//! command, for random queries, facts, weights, and delete forms. One
//! grammar feeds three consumers — `--mode serve --script` files,
//! `--mode incremental --updates` files, and the `hq serve --listen`
//! wire protocol — so the round-trip property is what keeps a script
//! captured from a wire session replayable as a file and vice versa.

use hq_db::{Fact, Interner, Tuple, Value};
use hq_query::gen::random_hierarchical;
use hq_unify::script::{parse_command, render_command, strip_comment, ScriptCommand, UpdateAction};
use proptest::prelude::*;
use rand::SeedableRng;

const RELS: [&str; 6] = ["R", "E", "F", "Edge", "Weights", "T_2"];

/// One random fact value: an `i64`, or an alphabetic-prefixed string
/// (the prefix guarantees it never re-parses as an int).
#[derive(Debug, Clone)]
enum FactValue {
    Int(i64),
    Str(String),
}

fn value_strategy() -> impl Strategy<Value = FactValue> {
    (any::<bool>(), any::<u64>()).prop_map(|(is_str, bits)| {
        if is_str {
            FactValue::Str(format!("v{}", bits % 10_000))
        } else {
            FactValue::Int(bits as i64)
        }
    })
}

fn fact_strategy() -> impl Strategy<Value = (usize, Vec<FactValue>)> {
    (
        0..RELS.len(),
        proptest::collection::vec(value_strategy(), 1..4),
    )
}

fn build_fact(interner: &mut Interner, rel: usize, values: &[FactValue]) -> Fact {
    let sym = interner.intern(RELS[rel]);
    let vals: Vec<Value> = values
        .iter()
        .map(|v| match v {
            FactValue::Int(i) => Value::int(*i),
            FactValue::Str(s) => Value::Str(interner.intern(s)),
        })
        .collect();
    Fact::new(sym, Tuple::from(vals))
}

/// Deletes, the implicit weight 1, probabilities, and arbitrary finite
/// magnitudes (the grammar is not probability-specific — counting and
/// tropical scripts use it too).
fn action_strategy() -> impl Strategy<Value = UpdateAction> {
    (0usize..4, 0.0..=1.0f64, any::<u64>()).prop_map(|(kind, p, bits)| match kind {
        0 => UpdateAction::Delete,
        1 => UpdateAction::Weight(1.0),
        2 => UpdateAction::Weight(p),
        _ => {
            let magnitude = (bits % 2_000_000_000) as f64 / 1_000.0 - 1_000_000.0;
            UpdateAction::Weight(magnitude)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Update lines: parse ∘ render = id on (fact, action), and
    /// render ∘ parse = id on the rendered text.
    #[test]
    fn update_commands_round_trip((rel, values) in fact_strategy(), action in action_strategy()) {
        let mut interner = Interner::new();
        let fact = build_fact(&mut interner, rel, &values);
        let cmd = ScriptCommand::Update(fact.clone(), action.clone());
        let line = render_command(&cmd, &interner);
        prop_assert_eq!(strip_comment(&line), Some(line.as_str()), "render emitted comment/blank");
        let reparsed = parse_command(&line, 0, "prop", &mut interner).unwrap();
        let ScriptCommand::Update(got_fact, got_action) = reparsed else {
            return Err(TestCaseError::fail("update re-parsed as a query"));
        };
        prop_assert_eq!(&got_fact, &fact, "fact changed across the round trip: {}", line);
        match (&action, &got_action) {
            (UpdateAction::Delete, UpdateAction::Delete) => {}
            (UpdateAction::Weight(a), UpdateAction::Weight(b)) => {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "weight drifted: {} vs {}", a, b);
            }
            _ => return Err(TestCaseError::fail(format!(
                "action kind changed: {action:?} vs {got_action:?}"
            ))),
        }
        // Second render is a fixed point.
        let again = render_command(&ScriptCommand::Update(got_fact, got_action), &interner);
        prop_assert_eq!(line, again);
    }

    /// Query lines: `? <query>` re-parses to a query with the same
    /// display form (queries are compared by their canonical render —
    /// the parser does not keep incidental whitespace).
    #[test]
    fn query_commands_round_trip(seed in 0u64..1_000_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q = random_hierarchical(&mut rng, 4, 4);
        let mut interner = Interner::new();
        let cmd = ScriptCommand::Query(q.clone());
        let line = render_command(&cmd, &interner);
        let reparsed = parse_command(&line, 0, "prop", &mut interner).unwrap();
        let ScriptCommand::Query(got) = reparsed else {
            return Err(TestCaseError::fail("query re-parsed as an update"));
        };
        prop_assert_eq!(got.to_string(), q.to_string(), "query changed: {}", line);
        prop_assert_eq!(render_command(&ScriptCommand::Query(got), &interner), line);
    }

    /// Trailing comments never change what a line parses to.
    #[test]
    fn trailing_comments_are_inert((rel, values) in fact_strategy(), action in action_strategy()) {
        let mut interner = Interner::new();
        let fact = build_fact(&mut interner, rel, &values);
        let line = render_command(&ScriptCommand::Update(fact.clone(), action), &interner);
        let commented = format!("{line}   # trailing note");
        let stripped = strip_comment(&commented).unwrap();
        let reparsed = parse_command(stripped, 0, "prop", &mut interner).unwrap();
        let ScriptCommand::Update(got_fact, _) = reparsed else {
            return Err(TestCaseError::fail("comment changed the command kind"));
        };
        prop_assert_eq!(got_fact, fact);
    }
}
