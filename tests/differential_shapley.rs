//! Differential testing of `#Sat` and Shapley values: the unifying
//! algorithm vs subset enumeration and the verbatim permutation
//! definition (Theorem 5.16 + the Section 5.6 reduction, empirically).

mod common;

use common::{cap_facts, random_instance};
use hq_arith::{binomial, Rational};
use hq_db::Fact;
use hq_unify::shapley;
use proptest::prelude::*;
use rand::Rng;

fn split_exo_endo(inst: &mut common::Instance, max_endo: usize) -> (Vec<Fact>, Vec<Fact>) {
    let facts = cap_facts(&inst.database, 10).facts();
    let mut exo = Vec::new();
    let mut endo = Vec::new();
    for f in facts {
        if endo.len() < max_endo && inst.rng.gen_bool(0.7) {
            endo.push(f);
        } else {
            exo.push(f);
        }
    }
    (exo, endo)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The unified #Sat vector equals subset enumeration, entry by
    /// entry, as exact naturals.
    #[test]
    fn sat_counts_match_bruteforce(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let (exo, endo) = split_exo_endo(&mut inst, 8);
        let unified =
            shapley::sat_counts(&inst.query, &inst.interner, &exo, &endo).unwrap();
        let brute = hq_baselines::sat_counts_bruteforce(
            &inst.query,
            &inst.interner,
            &exo,
            &endo,
        );
        for (k, expected) in brute.iter().enumerate() {
            prop_assert_eq!(
                unified.true_count(k),
                expected,
                "query {} k={}",
                inst.query,
                k
            );
        }
    }

    /// Completeness: true-counts plus false-counts are binomials —
    /// every subset of D_n is counted exactly once.
    #[test]
    fn sat_totals_are_binomial(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let (exo, endo) = split_exo_endo(&mut inst, 10);
        let v = shapley::sat_counts(&inst.query, &inst.interner, &exo, &endo).unwrap();
        for k in 0..=endo.len() {
            prop_assert_eq!(
                v.total(k),
                binomial(endo.len() as u64, k as u64),
                "query {} k={}",
                inst.query,
                k
            );
        }
    }

    /// The unified Shapley value equals the subset-sum oracle exactly.
    #[test]
    fn shapley_matches_subset_oracle(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 3, 3, 3);
        let (exo, endo) = split_exo_endo(&mut inst, 7);
        if endo.is_empty() {
            return Ok(());
        }
        let f = endo[inst.rng.gen_range(0..endo.len())].clone();
        let unified =
            shapley::shapley_value(&inst.query, &inst.interner, &exo, &endo, &f).unwrap();
        let oracle = hq_baselines::shapley_by_subsets(
            &inst.query,
            &inst.interner,
            &exo,
            &endo,
            &f,
        );
        prop_assert_eq!(unified, oracle, "query {} fact {}", inst.query, f.display(&inst.interner));
    }

    /// The unified Shapley value equals Definition 5.12 verbatim
    /// (permutation walk) on small instances.
    #[test]
    fn shapley_matches_permutation_definition(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 3, 3, 2, 3);
        let (exo, mut endo) = split_exo_endo(&mut inst, 5);
        endo.truncate(5);
        if endo.is_empty() {
            return Ok(());
        }
        let f = endo[inst.rng.gen_range(0..endo.len())].clone();
        let unified =
            shapley::shapley_value(&inst.query, &inst.interner, &exo, &endo, &f).unwrap();
        let by_perm = hq_baselines::shapley_by_permutations(
            &inst.query,
            &inst.interner,
            &exo,
            &endo,
            &f,
        );
        prop_assert_eq!(unified, by_perm, "query {}", inst.query);
    }

    /// Efficiency axiom: Shapley values over all endogenous facts sum
    /// to Q(D_x ∪ D_n) − Q(D_x) (as 0/1 indicators).
    #[test]
    fn efficiency_axiom(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 3, 3, 3);
        let (exo, endo) = split_exo_endo(&mut inst, 6);
        let values =
            shapley::shapley_values(&inst.query, &inst.interner, &exo, &endo).unwrap();
        let total = values.iter().fold(Rational::zero(), |acc, (_, v)| &acc + v);
        // Evaluate Q on D_x and on D_x ∪ D_n.
        let pattern = inst.query.to_pattern(&mut inst.interner);
        let mut dx = hq_db::Database::new();
        for f in exo.iter().chain(endo.iter()) {
            dx.declare(f.rel, f.tuple.arity());
        }
        for f in &exo {
            dx.insert(f.clone());
        }
        let q_exo = hq_db::satisfiable(&dx, &pattern).unwrap();
        for f in &endo {
            dx.insert(f.clone());
        }
        let q_all = hq_db::satisfiable(&dx, &pattern).unwrap();
        let expected = match (q_exo, q_all) {
            (false, true) => Rational::one(),
            _ => Rational::zero(),
        };
        prop_assert_eq!(total, expected, "query {}", inst.query);
    }

    /// Shapley values of a monotone query are non-negative.
    #[test]
    fn values_nonnegative(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 3, 3, 3);
        let (exo, endo) = split_exo_endo(&mut inst, 6);
        let values =
            shapley::shapley_values(&inst.query, &inst.interner, &exo, &endo).unwrap();
        for (f, v) in values {
            prop_assert!(!v.is_negative(), "{} got {}", f.display(&inst.interner), v);
        }
    }
}
