//! Differential testing of Probabilistic Query Evaluation: the
//! unifying algorithm vs possible-world enumeration on random
//! hierarchical instances (Theorem 5.8's correctness, empirically).

mod common;

use common::{cap_facts, random_instance};
use hq_arith::Rational;
use hq_db::Fact;
use hq_unify::pqe;
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Unified f64 PQE equals exhaustive possible-world enumeration.
    #[test]
    fn unified_matches_possible_worlds(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let db = cap_facts(&inst.database, 10);
        let tid: Vec<(Fact, f64)> = db
            .facts()
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f, p)
            })
            .collect();
        let unified = pqe::probability(&inst.query, &inst.interner, &tid).unwrap();
        let brute =
            hq_baselines::probability_exhaustive(&inst.query, &inst.interner, &tid);
        prop_assert!(
            (unified - brute).abs() < 1e-9,
            "query {} unified={unified} brute={brute}",
            inst.query
        );
    }

    /// Exact-rational PQE equals exact possible-world enumeration,
    /// with *equality* (no floating-point tolerance).
    #[test]
    fn exact_unified_matches_exact_worlds(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 3, 3, 3, 3);
        let db = cap_facts(&inst.database, 8);
        let tid: Vec<(Fact, Rational)> = db
            .facts()
            .into_iter()
            .map(|f| {
                let num = inst.rng.gen_range(0u64..=8);
                (f, Rational::ratio(num, 8))
            })
            .collect();
        let unified =
            pqe::probability_exact(&inst.query, &inst.interner, &tid).unwrap();
        let brute = hq_baselines::probability_exhaustive_exact(
            &inst.query,
            &inst.interner,
            &tid,
        );
        prop_assert_eq!(unified, brute, "query {}", inst.query);
    }

    /// Parallel and sequential possible-world sweeps agree (sanity for
    /// the dichotomy benchmarks).
    #[test]
    fn parallel_worlds_match_sequential(seed in 0u64..100_000) {
        let mut inst = random_instance(seed, 3, 3, 3, 3);
        let db = cap_facts(&inst.database, 8);
        let tid: Vec<(Fact, f64)> = db
            .facts()
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f, p)
            })
            .collect();
        let seq = hq_baselines::probability_exhaustive(&inst.query, &inst.interner, &tid);
        let par = hq_baselines::probability_exhaustive_parallel(
            &inst.query,
            &inst.interner,
            &tid,
            3,
        );
        prop_assert!((seq - par).abs() < 1e-12);
    }

    /// Monotonicity: raising any one probability cannot lower P(Q)
    /// (BCQs are monotone queries).
    #[test]
    fn probability_is_monotone_in_each_fact(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 3, 3);
        let db = cap_facts(&inst.database, 8);
        let mut tid: Vec<(Fact, f64)> = db
            .facts()
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.1..=0.8);
                (f, p)
            })
            .collect();
        if tid.is_empty() {
            return Ok(());
        }
        let before = pqe::probability(&inst.query, &inst.interner, &tid).unwrap();
        let idx = inst.rng.gen_range(0..tid.len());
        tid[idx].1 = (tid[idx].1 + 0.2).min(1.0);
        let after = pqe::probability(&inst.query, &inst.interner, &tid).unwrap();
        prop_assert!(after >= before - 1e-12, "raising p lowered P(Q)");
    }

    /// The probability lies in [0, 1] and the engine's support never
    /// grows.
    #[test]
    fn probability_in_unit_interval(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 5, 3);
        let tid: Vec<(Fact, f64)> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f, p)
            })
            .collect();
        let (p, stats) =
            pqe::probability_with_stats(&inst.query, &inst.interner, &tid).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "p={p}");
        prop_assert!(stats.support_never_grew());
    }
}
