//! Differential testing of the sharded parallel executor: runs at
//! `threads ∈ {1, 2, 3, 8}` must agree **exactly** — result value
//! (bit-for-bit on floats), support trajectory, and ⊕/⊗ operation
//! counts — with the sequential columnar backend *and* the ordered-map
//! oracle, on random hierarchical instances, for the probability,
//! counting, Bag-Set-Maximization, and `#Sat` monoid families.
//!
//! This is the determinism guarantee of the sharded execution mode:
//! shard boundaries fall on key/group boundaries and shard outputs are
//! recombined in fixed shard order, so scheduling can never leak into
//! results. Any nondeterministic shard merge shows up here as a
//! bit-level mismatch.

mod common;

use common::random_instance;
use hq_db::Fact;
use hq_monoid::{BagMaxMonoid, CountMonoid, ProbMonoid, SatCountMonoid, TwoMonoid};
use hq_unify::engine::{evaluate_encoded, evaluate_on_par};
use hq_unify::storage::EncodedDb;
use hq_unify::{bsm, evaluate_on, pqe, Backend, IncrementalRun, Parallelism};
use proptest::prelude::*;
use rand::Rng;

/// The thread counts every differential case sweeps. 1 is the
/// degenerate sharded run, 2 and 3 exercise uneven cuts, 8 exceeds the
/// support of many generated relations (every row its own shard).
const THREADS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// PQE: probabilities bit-identical and stats equal at every
    /// thread count, against both sequential backends.
    #[test]
    fn pqe_sharded_bit_identical(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 6, 3);
        let tid: Vec<(Fact, f64)> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f, p)
            })
            .collect();
        let (pm, sm) = pqe::probability_with_stats_on(
            Backend::Map, &inst.query, &inst.interner, &tid,
        ).unwrap();
        let (pc, sc) = pqe::probability_with_stats_on(
            Backend::Columnar, &inst.query, &inst.interner, &tid,
        ).unwrap();
        prop_assert_eq!(pm.to_bits(), pc.to_bits());
        prop_assert_eq!(&sm, &sc);
        for threads in THREADS {
            let par = Parallelism::fine_grained(threads);
            let (pp, sp) = pqe::probability_with_stats_par(
                Backend::Columnar, par, &inst.query, &inst.interner, &tid,
            ).unwrap();
            prop_assert_eq!(
                pc.to_bits(), pp.to_bits(),
                "threads={} seq {} vs sharded {} on {}", threads, pc, pp, inst.query
            );
            prop_assert_eq!(&sc, &sp, "stats diverged at threads={} on {}", threads, inst.query);
        }
    }

    /// Counting semiring (annihilating merges): values and op counts
    /// identical at every thread count.
    #[test]
    fn count_sharded_agrees(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 6, 3);
        let facts: Vec<(Fact, u64)> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| {
                let k = inst.rng.gen_range(1u64..=3);
                (f, k)
            })
            .collect();
        let (vc, sc) = evaluate_on(
            Backend::Columnar, &CountMonoid, &inst.query, &inst.interner, facts.clone(),
        ).unwrap();
        for threads in THREADS {
            let (vp, sp) = evaluate_on_par(
                Backend::Columnar, Parallelism::fine_grained(threads),
                &CountMonoid, &inst.query, &inst.interner, facts.clone(),
            ).unwrap();
            prop_assert_eq!(vc, vp, "threads={} on {}", threads, inst.query);
            prop_assert_eq!(&sc, &sp, "threads={} on {}", threads, inst.query);
            prop_assert!(sp.support_never_grew());
        }
    }

    /// Bag-Set Maximization (non-annihilating, 0-filled outer joins,
    /// fused columnar ψ-encoding): identical curves and stats at every
    /// thread count.
    #[test]
    fn bsm_sharded_agrees(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let mut d = hq_db::Database::new();
        let mut d_r = hq_db::Database::new();
        for (rel, r) in inst.database.relations() {
            d.declare(rel, r.arity());
            d_r.declare(rel, r.arity());
        }
        for f in inst.database.facts() {
            if inst.rng.gen_bool(0.5) {
                d.insert(f);
            } else {
                d_r.insert(f);
            }
        }
        let theta = inst.rng.gen_range(0usize..=4);
        let seq = bsm::maximize_on(
            Backend::Columnar, &inst.query, &inst.interner, &d, &d_r, theta,
        ).unwrap();
        let map = bsm::maximize_on(
            Backend::Map, &inst.query, &inst.interner, &d, &d_r, theta,
        ).unwrap();
        prop_assert_eq!(&map.curve, &seq.curve);
        prop_assert_eq!(&map.stats, &seq.stats);
        for threads in THREADS {
            let par = bsm::maximize_par(
                Backend::Columnar, Parallelism::fine_grained(threads),
                &inst.query, &inst.interner, &d, &d_r, theta,
            ).unwrap();
            prop_assert_eq!(&seq.curve, &par.curve, "threads={} θ={} on {}", threads, theta, inst.query);
            prop_assert_eq!(&seq.stats, &par.stats, "threads={} θ={} on {}", threads, theta, inst.query);
        }
    }

    /// The #Sat monoid (Shapley substrate; exact big-integer vectors,
    /// non-annihilating ⊗): identical at every thread count.
    #[test]
    fn satcount_sharded_agrees(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        if facts.is_empty() {
            return Ok(());
        }
        let n = facts.len();
        let monoid = SatCountMonoid::new(n);
        let annotated: Vec<_> = facts
            .iter()
            .map(|f| {
                let k = if inst.rng.gen_bool(0.5) { monoid.one() } else { monoid.star() };
                (f.clone(), k)
            })
            .collect();
        let (vc, sc) = evaluate_on(
            Backend::Columnar, &monoid, &inst.query, &inst.interner, annotated.clone(),
        ).unwrap();
        for threads in THREADS {
            let (vp, sp) = evaluate_on_par(
                Backend::Columnar, Parallelism::fine_grained(threads),
                &monoid, &inst.query, &inst.interner, annotated.clone(),
            ).unwrap();
            prop_assert_eq!(&vc, &vp, "threads={} on {}", threads, inst.query);
            prop_assert_eq!(&sc, &sp, "threads={} on {}", threads, inst.query);
        }
    }

    /// Support trajectories (the per-step Lemma 6.6 measurements) match
    /// entry-wise under the BagMax monoid at every thread count.
    #[test]
    fn support_trajectories_match_sharded(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 6, 3);
        let m = BagMaxMonoid::new(2);
        let annotated: Vec<_> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| {
                let k = if inst.rng.gen_bool(0.7) { m.one() } else { m.star() };
                (f, k)
            })
            .collect();
        let (_, sc) = evaluate_on(
            Backend::Columnar, &m, &inst.query, &inst.interner, annotated.clone(),
        ).unwrap();
        for threads in THREADS {
            let (_, sp) = evaluate_on_par(
                Backend::Columnar, Parallelism::fine_grained(threads),
                &m, &inst.query, &inst.interner, annotated.clone(),
            ).unwrap();
            prop_assert_eq!(&sc.support_sizes, &sp.support_sizes, "threads={} on {}", threads, inst.query);
        }
    }

    /// The incremental maintainer on the sharded backend stays
    /// bit-identical to the map-backed maintainer through a random
    /// update schedule, at every thread count.
    #[test]
    fn incremental_sharded_agrees(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let facts = inst.database.facts();
        if facts.is_empty() {
            return Ok(());
        }
        let tid: Vec<(Fact, f64)> = facts
            .iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f.clone(), p)
            })
            .collect();
        let mut oracle =
            IncrementalRun::new(ProbMonoid, &inst.query, &inst.interner, tid.clone()).unwrap();
        // One update schedule replayed against every thread count.
        let schedule: Vec<(usize, f64)> = (0..6)
            .map(|_| {
                let i = inst.rng.gen_range(0..facts.len());
                let p = if inst.rng.gen_bool(0.25) { 0.0 } else { inst.rng.gen_range(0.0..=1.0) };
                (i, p)
            })
            .collect();
        let mut sharded_runs: Vec<_> = THREADS
            .iter()
            .map(|&t| {
                IncrementalRun::with_parallelism(
                    ProbMonoid, &inst.query, &inst.interner, tid.clone(), Parallelism::fine_grained(t),
                )
                .unwrap()
            })
            .collect();
        for run in &sharded_runs {
            prop_assert_eq!(oracle.result().to_bits(), run.result().to_bits());
        }
        for &(i, p) in &schedule {
            let expect = *oracle.update(&inst.interner, &facts[i], p).unwrap();
            for (t, run) in THREADS.iter().zip(&mut sharded_runs) {
                let got = *run.update(&inst.interner, &facts[i], p).unwrap();
                prop_assert_eq!(
                    expect.to_bits(), got.to_bits(),
                    "threads={} after {} := {}", t, facts[i].display(&inst.interner), p
                );
            }
        }
    }

    /// The cached-encoding path (EncodedDb) is bit-identical to the
    /// uncached columnar path — including stats — at every thread
    /// count, and one encoding serves several annotation schemes.
    #[test]
    fn encoded_db_bit_identical(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 6, 3);
        let tid: Vec<(Fact, f64)> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f, p)
            })
            .collect();
        let (pc, sc) = pqe::probability_with_stats_on(
            Backend::Columnar, &inst.query, &inst.interner, &tid,
        ).unwrap();
        let enc = EncodedDb::new(&inst.database);
        for threads in THREADS {
            let lookup: std::collections::BTreeMap<(hq_db::Sym, &hq_db::Tuple), f64> =
                tid.iter().map(|(f, p)| ((f.rel, &f.tuple), *p)).collect();
            let (pe, se) = evaluate_encoded(
                Parallelism::fine_grained(threads),
                &ProbMonoid,
                &inst.query,
                &inst.interner,
                &inst.database,
                &enc,
                |sym, t| lookup[&(sym, t)],
            ).unwrap();
            prop_assert_eq!(
                pc.to_bits(), pe.to_bits(),
                "threads={} uncached {} vs encoded {} on {}", threads, pc, pe, inst.query
            );
            prop_assert_eq!(&sc, &se, "threads={} on {}", threads, inst.query);
        }
    }
}

proptest! {
    // Each case pushes 4 submitters × 3 rounds × 3 thread counts
    // through the shared pool, so fewer cases carry the same coverage.
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Pool contention: many rule applications pushed through the one
    /// shared worker pool *concurrently* (several user threads, each
    /// sweeping threads ∈ {2, 3, 8}) must each stay bit-identical to
    /// the sequential oracles — values, op counts and support
    /// trajectories. Interleaved batches from competing submitters are
    /// exactly the regime where a non-order-preserving pool would leak
    /// scheduling into results.
    #[test]
    fn pool_contention_stays_bit_identical(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 5, 5, 6, 3);
        let tid: Vec<(Fact, f64)> = inst
            .database
            .facts()
            .into_iter()
            .map(|f| {
                let p = inst.rng.gen_range(0.0..=1.0);
                (f, p)
            })
            .collect();
        let (pm, sm) = pqe::probability_with_stats_on(
            Backend::Map, &inst.query, &inst.interner, &tid,
        ).unwrap();
        let (pc, sc) = pqe::probability_with_stats_on(
            Backend::Columnar, &inst.query, &inst.interner, &tid,
        ).unwrap();
        prop_assert_eq!(pm.to_bits(), pc.to_bits());
        prop_assert_eq!(&sm, &sc);
        // 4 submitters × {2,3,8} threads × 3 rounds, all concurrently
        // on the global pool. Results come back to the main thread and
        // are compared against the sequential runs.
        let results: Vec<(usize, f64, hq_unify::EngineStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        for _round in 0..3 {
                            for threads in [2usize, 3, 8] {
                                let (p, s) = pqe::probability_with_stats_par(
                                    Backend::Columnar,
                                    Parallelism::fine_grained(threads),
                                    &inst.query, &inst.interner, &tid,
                                ).unwrap();
                                out.push((threads, p, s));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        for (threads, p, s) in results {
            prop_assert_eq!(
                pc.to_bits(), p.to_bits(),
                "contended threads={} seq {} vs sharded {} on {}", threads, pc, p, inst.query
            );
            prop_assert_eq!(
                &sc, &s,
                "contended stats diverged at threads={} on {}", threads, inst.query
            );
        }
    }
}

/// Pool reuse: after one warmup to the largest degree this binary ever
/// requests, rule applications spawn **zero** further threads — the
/// spawn counter is flat across whole evaluations at every thread
/// count. (Every test in this binary requests at most 8-way
/// parallelism, so nothing can out-grow the warmed pool and race this
/// assertion.)
#[test]
fn pool_reuse_spawns_no_threads_after_warmup() {
    Parallelism::fine_grained(8).warm_pool();
    let spawned = hq_unify::pool::spawn_count();
    assert!(spawned > 0, "warmup must have populated the pool");
    let mut inst = random_instance(2026, 5, 5, 6, 3);
    let tid: Vec<(Fact, f64)> = inst
        .database
        .facts()
        .into_iter()
        .map(|f| {
            let p = inst.rng.gen_range(0.0..=1.0);
            (f, p)
        })
        .collect();
    let (seq, _) =
        pqe::probability_with_stats_on(Backend::Columnar, &inst.query, &inst.interner, &tid)
            .unwrap();
    for _round in 0..5 {
        for threads in [2usize, 3, 8] {
            let (p, _) = pqe::probability_with_stats_par(
                Backend::Columnar,
                Parallelism::fine_grained(threads),
                &inst.query,
                &inst.interner,
                &tid,
            )
            .unwrap();
            assert_eq!(seq.to_bits(), p.to_bits());
        }
    }
    assert_eq!(
        hq_unify::pool::spawn_count(),
        spawned,
        "rule applications must not spawn threads once the pool is warm"
    );
}
