//! Differential testing of the delta-indexed incremental maintainer:
//! through arbitrary schedules of annotation updates, deletions and
//! **dynamic inserts** (facts — and domain values — the run has never
//! seen), the maintained result must agree **exactly** with a fresh
//! batch evaluation of the current state — values bit-for-bit on
//! floats, and the replayed [`EngineStats`] (support trajectory and
//! ⊕/⊗ op counts) equal to the fresh run's — on the ordered-map
//! oracle, the sequential columnar backend, and the sharded backend at
//! several thread counts, across the probability, counting,
//! Bag-Set-Maximization and `#Sat` monoid families.
//!
//! Batched updates must be indistinguishable from serial ones, and the
//! refold work of a batch is pinned to the dirty groups' sizes — the
//! delta-indexed acceptance bar.

mod common;

use common::random_instance;
use hq_db::{Fact, Tuple};
use hq_monoid::{BagMaxMonoid, CountMonoid, ProbMonoid, SatCountMonoid, TwoMonoid};
use hq_unify::engine::EngineStats;
use hq_unify::{evaluate_on, Backend, IncrementalRun, Parallelism};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Thread counts for the sharded maintained runs.
const THREADS: [usize; 2] = [2, 8];

/// One maintained run per backend flavour, all fed the same schedule.
struct Fleet<M: TwoMonoid> {
    map: IncrementalRun<M, hq_unify::MapRelation<M::Elem>>,
    columnar: IncrementalRun<M, hq_unify::ColumnarRelation<M::Elem>>,
    sharded: Vec<IncrementalRun<M, hq_unify::ShardedColumnar<M::Elem>>>,
}

impl<M: TwoMonoid + Clone> Fleet<M> {
    fn build(
        monoid: &M,
        q: &hq_query::Query,
        interner: &hq_db::Interner,
        facts: &[(Fact, M::Elem)],
    ) -> Self {
        Fleet {
            map: IncrementalRun::with_storage(monoid.clone(), q, interner, facts.iter().cloned())
                .unwrap(),
            columnar: IncrementalRun::with_storage(
                monoid.clone(),
                q,
                interner,
                facts.iter().cloned(),
            )
            .unwrap(),
            sharded: THREADS
                .iter()
                .map(|&t| {
                    IncrementalRun::with_parallelism(
                        monoid.clone(),
                        q,
                        interner,
                        facts.iter().cloned(),
                        Parallelism::fine_grained(t),
                    )
                    .unwrap()
                })
                .collect(),
        }
    }

    /// Applies one batch to every run and returns the (asserted-equal)
    /// results of all runs.
    fn apply(
        &mut self,
        interner: &hq_db::Interner,
        batch: &[(Fact, M::Elem)],
    ) -> (M::Elem, Vec<EngineStats>) {
        let expect = self.map.update_batch(interner, batch).unwrap().clone();
        let mut stats = vec![self.map.replay_stats()];
        let got = self.columnar.update_batch(interner, batch).unwrap();
        assert_eq!(&expect, got, "columnar diverged");
        stats.push(self.columnar.replay_stats());
        for run in &mut self.sharded {
            let got = run.update_batch(interner, batch).unwrap();
            assert_eq!(&expect, got, "sharded diverged");
            stats.push(run.replay_stats());
        }
        (expect, stats)
    }
}

/// A random update schedule entry over the instance's query relations:
/// existing-fact updates, deletions (`weight = None` → the monoid's
/// zero), and genuinely new facts with possibly novel domain values.
fn random_batch(
    rng: &mut StdRng,
    facts: &[Fact],
    query_rels: &[(hq_db::Sym, usize)],
    domain: i64,
) -> Vec<(Fact, Option<f64>)> {
    let len = rng.gen_range(1..=3);
    (0..len)
        .map(|_| {
            let novel = rng.gen_bool(0.3) || facts.is_empty();
            let fact = if novel {
                let (rel, arity) = query_rels[rng.gen_range(0..query_rels.len())];
                // Half the novel facts reach outside the original
                // domain, forcing dictionary extension on the columnar
                // backends.
                let hi = if rng.gen_bool(0.5) {
                    domain
                } else {
                    domain * 4 + 7
                };
                let vals: Vec<i64> = (0..arity).map(|_| rng.gen_range(0..=hi)).collect();
                Fact::new(rel, Tuple::ints(&vals))
            } else {
                facts[rng.gen_range(0..facts.len())].clone()
            };
            let weight = if rng.gen_bool(0.25) {
                None // delete
            } else {
                Some(rng.gen_range(0.0..=1.0))
            };
            (fact, weight)
        })
        .collect()
}

/// Applies a batch to the model state (`current`) the fresh evaluation
/// is run from: deletes drop the fact, writes upsert it.
fn apply_to_model<K: Clone>(
    current: &mut std::collections::BTreeMap<Fact, K>,
    batch: &[(Fact, Option<K>)],
) {
    for (fact, v) in batch {
        match v {
            None => {
                current.remove(fact);
            }
            Some(k) => {
                current.insert(fact.clone(), k.clone());
            }
        }
    }
}

/// The query's relations as (symbol, arity), for generating inserts.
fn query_rels(q: &hq_query::Query, interner: &hq_db::Interner) -> Vec<(hq_db::Sym, usize)> {
    q.atoms()
        .iter()
        .filter_map(|a| interner.get(&a.rel).map(|s| (s, a.vars.len())))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Probability monoid: maintained values bit-identical to fresh
    /// evaluation, and replayed stats equal to the fresh stats, on all
    /// backends and thread counts, through updates/deletes/inserts.
    #[test]
    fn prob_updates_inserts_match_fresh(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, f64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(0.0..=1.0)))
            .collect();
        let tid: Vec<(Fact, f64)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&ProbMonoid, &inst.query, &inst.interner, &tid);
        for _ in 0..5 {
            let batch = random_batch(&mut inst.rng, &facts, &rels, 3);
            apply_to_model(&mut current, &batch);
            let runs: Vec<(Fact, f64)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.unwrap_or(0.0)))
                .collect();
            let (got, stats) = fleet.apply(&inst.interner, &runs);
            let list: Vec<(Fact, f64)> = current.clone().into_iter().collect();
            for backend in Backend::ALL {
                let (fresh, fresh_stats) =
                    evaluate_on(backend, &ProbMonoid, &inst.query, &inst.interner, list.clone())
                        .unwrap();
                prop_assert_eq!(
                    got.to_bits(), fresh.to_bits(),
                    "{} maintained {} vs fresh {} on {}", backend, got, fresh, inst.query
                );
                for st in &stats {
                    prop_assert_eq!(st, &fresh_stats, "stats diverged on {}", inst.query);
                }
            }
        }
    }

    /// Counting semiring: values, op counts and trajectories under a
    /// schedule of integer-annotation updates and inserts.
    #[test]
    fn count_updates_inserts_match_fresh(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, u64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(1u64..=3)))
            .collect();
        let list: Vec<(Fact, u64)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&CountMonoid, &inst.query, &inst.interner, &list);
        for _ in 0..5 {
            let batch: Vec<(Fact, Option<u64>)> =
                random_batch(&mut inst.rng, &facts, &rels, 3)
                    .into_iter()
                    .map(|(f, w)| (f, w.map(|p| 1 + (p * 3.0) as u64)))
                    .collect();
            apply_to_model(&mut current, &batch);
            let runs: Vec<(Fact, u64)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.unwrap_or(0)))
                .collect();
            let (got, stats) = fleet.apply(&inst.interner, &runs);
            let list: Vec<(Fact, u64)> = current.clone().into_iter().collect();
            let (fresh, fresh_stats) =
                evaluate_on(Backend::Columnar, &CountMonoid, &inst.query, &inst.interner, list)
                    .unwrap();
            prop_assert_eq!(got, fresh, "on {}", inst.query);
            for st in &stats {
                prop_assert_eq!(st, &fresh_stats, "stats diverged on {}", inst.query);
            }
        }
    }

    /// Bag-Set Maximization (non-annihilating ⊗, 0-filled merges):
    /// ψ-class reassignments and inserts match fresh evaluation.
    #[test]
    fn bsm_updates_inserts_match_fresh(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let m = BagMaxMonoid::new(3);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, _> = facts
            .iter()
            .map(|f| {
                let k = if inst.rng.gen_bool(0.5) { m.one() } else { m.star() };
                (f.clone(), k)
            })
            .collect();
        let list: Vec<(Fact, _)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&m, &inst.query, &inst.interner, &list);
        for _ in 0..4 {
            let batch: Vec<(Fact, Option<_>)> = random_batch(&mut inst.rng, &facts, &rels, 3)
                .into_iter()
                .map(|(f, w)| {
                    (f, w.map(|p| if p < 0.5 { m.one() } else { m.star() }))
                })
                .collect();
            apply_to_model(&mut current, &batch);
            let runs: Vec<(Fact, _)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.clone().unwrap_or_else(|| m.zero())))
                .collect();
            let (got, stats) = fleet.apply(&inst.interner, &runs);
            let list: Vec<(Fact, _)> = current.clone().into_iter().collect();
            let (fresh, fresh_stats) =
                evaluate_on(Backend::Columnar, &m, &inst.query, &inst.interner, list).unwrap();
            prop_assert_eq!(&got, &fresh, "on {}", inst.query);
            for st in &stats {
                prop_assert_eq!(st, &fresh_stats, "stats diverged on {}", inst.query);
            }
        }
    }

    /// The #Sat monoid (Shapley substrate, exact big-integer vectors):
    /// role flips and inserts match fresh evaluation.
    #[test]
    fn satcount_updates_inserts_match_fresh(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 4, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let facts = inst.database.facts();
        // Capacity covers the initial facts plus every insert the
        // schedule can make (3 batches × ≤3 ops).
        let m = SatCountMonoid::new(facts.len() + 9);
        let mut current: std::collections::BTreeMap<Fact, _> = facts
            .iter()
            .map(|f| {
                let k = if inst.rng.gen_bool(0.5) { m.one() } else { m.star() };
                (f.clone(), k)
            })
            .collect();
        let list: Vec<(Fact, _)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&m, &inst.query, &inst.interner, &list);
        for _ in 0..3 {
            let batch: Vec<(Fact, Option<_>)> = random_batch(&mut inst.rng, &facts, &rels, 3)
                .into_iter()
                .map(|(f, w)| {
                    (f, w.map(|p| if p < 0.5 { m.one() } else { m.star() }))
                })
                .collect();
            apply_to_model(&mut current, &batch);
            let runs: Vec<(Fact, _)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.clone().unwrap_or_else(|| m.zero())))
                .collect();
            let (got, stats) = fleet.apply(&inst.interner, &runs);
            let list: Vec<(Fact, _)> = current.clone().into_iter().collect();
            let (fresh, fresh_stats) =
                evaluate_on(Backend::Columnar, &m, &inst.query, &inst.interner, list).unwrap();
            prop_assert_eq!(&got, &fresh, "on {}", inst.query);
            for st in &stats {
                prop_assert_eq!(st, &fresh_stats, "stats diverged on {}", inst.query);
            }
        }
    }

    /// A batch must be indistinguishable from its serialisation — and
    /// coalesce duplicate facts with last-write-wins semantics.
    #[test]
    fn batches_equal_serial_updates(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let facts = inst.database.facts();
        let tid: Vec<(Fact, f64)> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(0.0..=1.0)))
            .collect();
        let mut batched: IncrementalRun<ProbMonoid, hq_unify::ColumnarRelation<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &inst.query, &inst.interner, tid.clone())
                .unwrap();
        let mut serial: IncrementalRun<ProbMonoid, hq_unify::ColumnarRelation<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &inst.query, &inst.interner, tid)
                .unwrap();
        for _ in 0..4 {
            let mut batch: Vec<(Fact, f64)> = random_batch(&mut inst.rng, &facts, &rels, 3)
                .into_iter()
                .map(|(f, w)| (f, w.unwrap_or(0.0)))
                .collect();
            // Inject a duplicate-fact write: only the later one counts.
            if let Some((f, _)) = batch.first().cloned() {
                batch.push((f, inst.rng.gen_range(0.0..=1.0)));
            }
            let got = *batched.update_batch(&inst.interner, &batch).unwrap();
            // Serial application of the coalesced batch (last write
            // wins per fact, preserving first-occurrence order).
            let mut coalesced: Vec<(Fact, f64)> = Vec::new();
            for (f, p) in &batch {
                match coalesced.iter_mut().find(|(g, _)| g == f) {
                    Some(slot) => slot.1 = *p,
                    None => coalesced.push((f.clone(), *p)),
                }
            }
            let mut expect = *serial.result();
            for (f, p) in &coalesced {
                expect = *serial.update(&inst.interner, f, *p).unwrap();
            }
            prop_assert_eq!(
                got.to_bits(), expect.to_bits(),
                "batch vs serial diverged on {}", inst.query
            );
            prop_assert!(batched.last_update_stats().keys_written <= batch.len());
        }
    }
}

/// Non-proptest pin: refold work scales with dirty group sizes, and the
/// pipeline stores no full database clones (the acceptance criteria of
/// the delta-indexed design, checked end to end from the public API).
#[test]
fn single_update_work_is_local_and_memory_is_lean() {
    // E(k, k) ⋈ F at Y ∈ {0, 1} only: every group a single update can
    // dirty is ≤ 2 rows while |D| grows.
    let q = hq_query::q_hierarchical();
    let n = 2048i64;
    let mut interner = hq_db::Interner::new();
    let e = interner.intern("E");
    let f = interner.intern("F");
    let mut facts: Vec<(Fact, u64)> = Vec::new();
    for k in 0..n {
        facts.push((Fact::new(e, Tuple::ints(&[k, k])), 1));
    }
    facts.push((Fact::new(f, Tuple::ints(&[0, 1])), 1));
    facts.push((Fact::new(f, Tuple::ints(&[1, 1])), 1));
    let total = facts.len();
    let mut run: IncrementalRun<CountMonoid, hq_unify::ColumnarRelation<u64>> =
        IncrementalRun::with_storage(CountMonoid, &q, &interner, facts.iter().cloned()).unwrap();
    // A joining single-fact update: refold work stays O(plan), not O(|D|).
    run.update(&interner, &facts[0].0, 2).unwrap();
    let work = run.last_update_stats();
    assert!(
        work.rows_folded <= 4,
        "refold touched {} rows on |D| = {total}",
        work.rows_folded
    );
    assert!(
        work.add_ops + work.mul_ops <= 8,
        "update spent {} monoid ops on |D| = {total}",
        work.add_ops + work.mul_ops
    );
    // Memory: strictly below half the old steps+1 full-clone footprint.
    let steps = 4; // two Rule 1 projections, one merge, one final fold
    assert!(
        run.materialised_rows() < (steps + 1) * total / 2,
        "materialised {} rows vs {} full-clone rows",
        run.materialised_rows(),
        (steps + 1) * total
    );
}
