//! Differential testing of the multi-query serving session: through
//! arbitrary mixed scripts of (possibly overlapping) queries and
//! update batches — probability drifts, deletions, dynamic inserts
//! with novel domain values — every query served from the shared plan
//! cache must be **indistinguishable** from an independent fresh
//! evaluation of the current state: values bit-for-bit on floats, and
//! the reported [`EngineStats`] (⊕/⊗ op counts *and* support
//! trajectory) equal to the fresh run's — on the ordered-map oracle,
//! the sequential columnar backend, the compressed block tier, and the
//! sharded backend at thread counts 2 and 8.
//!
//! Non-prop pins: a batch of overlapping queries must perform strictly
//! fewer monoid operations than independent `evaluate_encoded` calls
//! (the acceptance bar for common-subexpression sharing), and a cache
//! hit must perform **zero** monoid operations on the shared prefix.

mod common;

use common::random_instance;
use hq_db::{Database, Fact, Interner, Tuple};
use hq_monoid::{BagMaxMonoid, CountMonoid, ProbMonoid, TwoMonoid};
use hq_query::Query;
use hq_unify::engine::EngineStats;
use hq_unify::{
    evaluate_encoded, evaluate_on, ColumnarRelation, CompressedAnn, CompressedColumnar, EncodedDb,
    MapRelation, Parallelism, ServingBackend, ServingSession, ShardedColumnar,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Thread counts for the sharded serving sessions.
const THREADS: [usize; 2] = [2, 8];

/// One serving session per backend flavour, all fed the same script.
struct Fleet<M: TwoMonoid>
where
    M::Elem: CompressedAnn,
{
    map: ServingSession<M, MapRelation<M::Elem>>,
    columnar: ServingSession<M, ColumnarRelation<M::Elem>>,
    compressed: ServingSession<M, CompressedColumnar<M::Elem>>,
    sharded: Vec<ServingSession<M, ShardedColumnar<M::Elem>>>,
}

impl<M: TwoMonoid + Clone> Fleet<M>
where
    M::Elem: CompressedAnn,
{
    fn build(monoid: &M, interner: &Interner, facts: &[(Fact, M::Elem)]) -> Self {
        Fleet {
            map: ServingSession::new(monoid.clone(), interner, facts.iter().cloned()).unwrap(),
            columnar: ServingSession::new(monoid.clone(), interner, facts.iter().cloned()).unwrap(),
            compressed: ServingSession::new(monoid.clone(), interner, facts.iter().cloned())
                .unwrap(),
            sharded: THREADS
                .iter()
                .map(|&t| {
                    ServingSession::with_parallelism(
                        monoid.clone(),
                        interner,
                        facts.iter().cloned(),
                        Parallelism::fine_grained(t),
                    )
                    .unwrap()
                })
                .collect(),
        }
    }

    /// Applies one configuration knob to every session of the fleet.
    fn configure(&mut self, f: impl Fn(&mut dyn SessionKnobs)) {
        f(&mut self.map);
        f(&mut self.columnar);
        f(&mut self.compressed);
        for s in &mut self.sharded {
            f(s);
        }
    }

    /// Serves `q` from every session and asserts all agree; returns the
    /// shared `(value, stats)`.
    fn query(&mut self, interner: &Interner, q: &Query) -> (M::Elem, EngineStats) {
        let (want, want_stats) = self.map.query(interner, q).unwrap();
        let (got, stats) = self.columnar.query(interner, q).unwrap();
        assert_eq!(want, got, "columnar session diverged on {q}");
        assert_eq!(want_stats, stats, "columnar stats diverged on {q}");
        let (got, stats) = self.compressed.query(interner, q).unwrap();
        assert_eq!(want, got, "compressed session diverged on {q}");
        assert_eq!(want_stats, stats, "compressed stats diverged on {q}");
        for s in &mut self.sharded {
            let (got, stats) = s.query(interner, q).unwrap();
            assert_eq!(want, got, "sharded session diverged on {q}");
            assert_eq!(want_stats, stats, "sharded stats diverged on {q}");
        }
        (want, want_stats)
    }

    fn update_batch(&mut self, interner: &Interner, batch: &[(Fact, M::Elem)]) {
        self.map.update_batch(interner, batch).unwrap();
        self.columnar.update_batch(interner, batch).unwrap();
        self.compressed.update_batch(interner, batch).unwrap();
        for s in &mut self.sharded {
            s.update_batch(interner, batch).unwrap();
        }
    }
}

/// Backend-erased access to the session knobs the differential suite
/// sweeps (patch threshold, cache budget).
trait SessionKnobs {
    fn set_patch_fraction(&mut self, fraction: f64);
    fn set_cache_budget(&mut self, budget: Option<usize>);
}

impl<M: TwoMonoid, R: ServingBackend<Ann = M::Elem>> SessionKnobs for ServingSession<M, R> {
    fn set_patch_fraction(&mut self, fraction: f64) {
        ServingSession::set_patch_fraction(self, fraction);
    }
    fn set_cache_budget(&mut self, budget: Option<usize>) {
        ServingSession::set_cache_budget(self, budget);
    }
}

/// A family of overlapping queries over `q`'s schema: the full query
/// plus every leading atom prefix (removing atoms of a hierarchical
/// query preserves the hierarchy property: each `at(·)` only shrinks),
/// and the full query once more so at least one script entry is a pure
/// cache hit.
fn query_family(q: &Query) -> Vec<Query> {
    let mut family = vec![q.clone()];
    for len in 1..q.atom_count() {
        let atoms: Vec<(String, Vec<String>)> = q.atoms()[..len]
            .iter()
            .map(|a| {
                (
                    a.rel.clone(),
                    a.vars.iter().map(|&v| q.var_name(v).to_owned()).collect(),
                )
            })
            .collect();
        let borrowed: Vec<(&str, Vec<&str>)> = atoms
            .iter()
            .map(|(r, vs)| (r.as_str(), vs.iter().map(String::as_str).collect()))
            .collect();
        let specs: Vec<(&str, &[&str])> =
            borrowed.iter().map(|(r, vs)| (*r, vs.as_slice())).collect();
        family.push(Query::new(&specs).expect("atom subsets stay hierarchical"));
    }
    family.push(q.clone());
    family
}

/// The query's relations as (symbol, arity), for generating updates.
fn query_rels(q: &Query, interner: &Interner) -> Vec<(hq_db::Sym, usize)> {
    q.atoms()
        .iter()
        .filter_map(|a| interner.get(&a.rel).map(|s| (s, a.vars.len())))
        .collect()
}

/// A random update batch over the query relations: drifts, deletions
/// (`None`), and genuinely new facts — half of them carrying domain
/// values outside the original instance (dictionary-extension path).
fn random_batch(
    rng: &mut StdRng,
    facts: &[Fact],
    query_rels: &[(hq_db::Sym, usize)],
    domain: i64,
) -> Vec<(Fact, Option<f64>)> {
    let len = rng.gen_range(1..=3);
    (0..len)
        .map(|_| {
            let novel = rng.gen_bool(0.3) || facts.is_empty();
            let fact = if novel {
                let (rel, arity) = query_rels[rng.gen_range(0..query_rels.len())];
                let hi = if rng.gen_bool(0.5) {
                    domain
                } else {
                    domain * 4 + 7
                };
                let vals: Vec<i64> = (0..arity).map(|_| rng.gen_range(0..=hi)).collect();
                Fact::new(rel, Tuple::ints(&vals))
            } else {
                facts[rng.gen_range(0..facts.len())].clone()
            };
            let weight = if rng.gen_bool(0.25) {
                None // delete
            } else {
                Some(rng.gen_range(0.01..=1.0))
            };
            (fact, weight)
        })
        .collect()
}

/// Applies a batch to the model state the fresh evaluations run from.
fn apply_to_model<K: Clone>(
    current: &mut std::collections::BTreeMap<Fact, K>,
    batch: &[(Fact, Option<K>)],
) {
    for (fact, v) in batch {
        match v {
            None => {
                current.remove(fact);
            }
            Some(k) => {
                current.insert(fact.clone(), k.clone());
            }
        }
    }
}

/// Fresh `evaluate_encoded` over the model state (database + encoding
/// rebuilt from scratch) — the independent baseline the acceptance
/// criterion names.
fn fresh_encoded<M: TwoMonoid>(
    monoid: &M,
    q: &Query,
    interner: &Interner,
    current: &std::collections::BTreeMap<Fact, M::Elem>,
) -> (M::Elem, EngineStats) {
    let mut db = Database::new();
    for f in current.keys() {
        db.insert(f.clone());
    }
    let enc = EncodedDb::new(&db);
    evaluate_encoded(
        Parallelism::default(),
        monoid,
        q,
        interner,
        &db,
        &enc,
        |sym, t| current[&Fact::new(sym, t.clone())].clone(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Probability monoid: a mixed script of overlapping queries and
    /// update batches; every served answer bit-identical (value, op
    /// counts, support trajectory) to fresh evaluation, on every
    /// backend and thread count.
    #[test]
    fn prob_serving_matches_fresh_evaluation(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, f64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(0.01..=1.0)))
            .collect();
        let tid: Vec<(Fact, f64)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&ProbMonoid, &inst.interner, &tid);
        for round in 0..3 {
            for q in &family {
                let (got, stats) = fleet.query(&inst.interner, q);
                let list: Vec<(Fact, f64)> = current.clone().into_iter().collect();
                for backend in hq_unify::Backend::ALL {
                    let (fresh, fresh_stats) =
                        evaluate_on(backend, &ProbMonoid, q, &inst.interner, list.clone())
                            .unwrap();
                    prop_assert_eq!(
                        got.to_bits(), fresh.to_bits(),
                        "{} served {} vs fresh {} on {} (round {})",
                        backend, got, fresh, q, round
                    );
                    prop_assert_eq!(&stats, &fresh_stats, "stats diverged on {}", q);
                }
                let (fresh, fresh_stats) = fresh_encoded(&ProbMonoid, q, &inst.interner, &current);
                prop_assert_eq!(got.to_bits(), fresh.to_bits(), "encoded path on {}", q);
                prop_assert_eq!(&stats, &fresh_stats, "encoded stats on {}", q);
            }
            let batch = random_batch(&mut inst.rng, &facts, &rels, 3);
            apply_to_model(&mut current, &batch);
            let writes: Vec<(Fact, f64)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.unwrap_or(0.0)))
                .collect();
            fleet.update_batch(&inst.interner, &writes);
        }
    }

    /// Forced delta-patching (`patch_fraction = ∞`): every dirty
    /// intermediate is repaired in place through the refold machinery
    /// — never dropped — through drifts, deletions and novel-value
    /// inserts, and every served answer (value, op counts, support
    /// trajectory) stays bit-identical to fresh evaluation.
    #[test]
    fn patched_serving_matches_fresh_evaluation(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, f64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(0.01..=1.0)))
            .collect();
        let tid: Vec<(Fact, f64)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&ProbMonoid, &inst.interner, &tid);
        fleet.configure(|s| s.set_patch_fraction(f64::INFINITY));
        for _ in 0..4 {
            for q in &family {
                let (got, stats) = fleet.query(&inst.interner, q);
                let (fresh, fresh_stats) = fresh_encoded(&ProbMonoid, q, &inst.interner, &current);
                prop_assert_eq!(got.to_bits(), fresh.to_bits(), "patched path on {}", q);
                prop_assert_eq!(&stats, &fresh_stats, "patched stats on {}", q);
            }
            let batch = random_batch(&mut inst.rng, &facts, &rels, 3);
            apply_to_model(&mut current, &batch);
            let writes: Vec<(Fact, f64)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.unwrap_or(0.0)))
                .collect();
            fleet.update_batch(&inst.interner, &writes);
        }
    }

    /// Eviction pressure (a tiny cache budget) under delete-heavy
    /// schedules: nodes constantly fall out of the cache and rebuild
    /// lazily, yet every answer stays bit-identical to fresh
    /// evaluation and the budget is honoured after every query.
    #[test]
    fn eviction_pressure_with_delete_heavy_schedules(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, f64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(0.01..=1.0)))
            .collect();
        let tid: Vec<(Fact, f64)> = current.clone().into_iter().collect();
        let budget = 4usize;
        let mut fleet = Fleet::build(&ProbMonoid, &inst.interner, &tid);
        fleet.configure(|s| {
            s.set_patch_fraction(f64::INFINITY);
            s.set_cache_budget(Some(budget));
        });
        for _ in 0..3 {
            for q in &family {
                let (got, stats) = fleet.query(&inst.interner, q);
                let (fresh, fresh_stats) = fresh_encoded(&ProbMonoid, q, &inst.interner, &current);
                prop_assert_eq!(got.to_bits(), fresh.to_bits(), "evicting path on {}", q);
                prop_assert_eq!(&stats, &fresh_stats, "evicting stats on {}", q);
                prop_assert!(fleet.columnar.cached_rows() <= budget, "budget violated");
                prop_assert!(fleet.map.cached_rows() <= budget, "budget violated (map)");
                prop_assert!(
                    fleet.compressed.cached_rows() <= budget,
                    "budget violated (compressed)"
                );
            }
            // Delete-heavy: every other write of the batch becomes a
            // delete on top of random_batch's own deletions.
            let mut batch = random_batch(&mut inst.rng, &facts, &rels, 3);
            for (i, (_, w)) in batch.iter_mut().enumerate() {
                if i % 2 == 0 {
                    *w = None;
                }
            }
            apply_to_model(&mut current, &batch);
            let writes: Vec<(Fact, f64)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.unwrap_or(0.0)))
                .collect();
            fleet.update_batch(&inst.interner, &writes);
        }
    }

    /// Counting semiring (annihilating ⊗): same contract.
    #[test]
    fn count_serving_matches_fresh_evaluation(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, u64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(1u64..=3)))
            .collect();
        let list: Vec<(Fact, u64)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&CountMonoid, &inst.interner, &list);
        for _ in 0..3 {
            for q in &family {
                let (got, stats) = fleet.query(&inst.interner, q);
                let (fresh, fresh_stats) = fresh_encoded(&CountMonoid, q, &inst.interner, &current);
                prop_assert_eq!(got, fresh, "on {}", q);
                prop_assert_eq!(&stats, &fresh_stats, "stats diverged on {}", q);
            }
            let batch: Vec<(Fact, Option<u64>)> = random_batch(&mut inst.rng, &facts, &rels, 3)
                .into_iter()
                .map(|(f, w)| (f, w.map(|p| 1 + (p * 3.0) as u64)))
                .collect();
            apply_to_model(&mut current, &batch);
            let writes: Vec<(Fact, u64)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.unwrap_or(0)))
                .collect();
            fleet.update_batch(&inst.interner, &writes);
        }
    }

    /// Bag-Set Maximization (non-annihilating ⊗ with 0-filled merges):
    /// ψ-class scripts against fresh evaluation.
    #[test]
    fn bagmax_serving_matches_fresh_evaluation(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 3, 4, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let m = BagMaxMonoid::new(3);
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, _> = facts
            .iter()
            .map(|f| {
                let k = if inst.rng.gen_bool(0.5) { m.one() } else { m.star() };
                (f.clone(), k)
            })
            .collect();
        let list: Vec<(Fact, _)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&m, &inst.interner, &list);
        for _ in 0..2 {
            for q in &family {
                let (got, stats) = fleet.query(&inst.interner, q);
                let (fresh, fresh_stats) = fresh_encoded(&m, q, &inst.interner, &current);
                prop_assert_eq!(&got, &fresh, "on {}", q);
                prop_assert_eq!(&stats, &fresh_stats, "stats diverged on {}", q);
            }
            let batch: Vec<(Fact, Option<_>)> = random_batch(&mut inst.rng, &facts, &rels, 3)
                .into_iter()
                .map(|(f, w)| (f, w.map(|p| if p < 0.5 { m.one() } else { m.star() })))
                .collect();
            apply_to_model(&mut current, &batch);
            let writes: Vec<(Fact, _)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.clone().unwrap_or_else(|| m.zero())))
                .collect();
            fleet.update_batch(&inst.interner, &writes);
        }
    }
}

/// The chain instance every non-prop pin below uses: large enough that
/// every query performs real monoid work.
fn chain_instance() -> (Vec<(Fact, f64)>, Interner, Vec<Query>) {
    let mut interner = Interner::new();
    let e = interner.intern("E");
    let f = interner.intern("F");
    let mut tid = Vec::new();
    for k in 0..48i64 {
        tid.push((
            Fact::new(e, Tuple::ints(&[k / 3, k % 7])),
            0.05 + 0.01 * k as f64,
        ));
        tid.push((
            Fact::new(f, Tuple::ints(&[k % 7, k / 2])),
            0.9 - 0.01 * k as f64,
        ));
    }
    tid.sort_by(|a, b| a.0.cmp(&b.0));
    tid.dedup_by(|a, b| a.0 == b.0);
    let queries: Vec<Query> = [
        "Q() :- E(X,Y), F(Y,Z)",
        "Q() :- E(X,Y)",
        "Q() :- F(Y,Z)",
        "Q() :- E(X,Y), F(Y,Z)",
    ]
    .iter()
    .map(|s| hq_query::parse_query(s).unwrap())
    .collect();
    (tid, interner, queries)
}

/// Acceptance criterion: a session serving N ≥ 4 overlapping queries
/// performs strictly fewer total monoid ops than N independent
/// `evaluate_encoded` calls, while every query's value and stats are
/// bit-identical to its independent run — on map/columnar/sharded ×
/// threads {1, 2, 8}.
#[test]
fn shared_serving_beats_independent_evaluation_on_every_backend() {
    let (tid, interner, queries) = chain_instance();
    let current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    // Independent baseline: one evaluate_encoded per query (per the
    // acceptance criterion), plus the map oracle for value checks.
    let mut independent: Vec<(f64, EngineStats)> = Vec::new();
    let mut independent_total = 0u64;
    for q in &queries {
        let (v, s) = fresh_encoded(&ProbMonoid, q, &interner, &current);
        independent_total += s.total_ops();
        independent.push((v, s));
    }
    fn check<R: ServingBackend<Ann = f64>>(
        mut session: ServingSession<ProbMonoid, R>,
        interner: &Interner,
        queries: &[Query],
        independent: &[(f64, EngineStats)],
        independent_total: u64,
        label: &str,
    ) {
        for (q, (want, want_stats)) in queries.iter().zip(independent) {
            let (got, stats) = session.query(interner, q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "{label}: value on {q}");
            assert_eq!(&stats, want_stats, "{label}: stats on {q}");
        }
        assert!(
            session.ops_performed() < independent_total,
            "{label}: sharing must strictly beat independent evaluation \
             (performed {} vs {})",
            session.ops_performed(),
            independent_total
        );
    }
    check(
        ServingSession::<_, MapRelation<f64>>::new(ProbMonoid, &interner, tid.iter().cloned())
            .unwrap(),
        &interner,
        &queries,
        &independent,
        independent_total,
        "map",
    );
    check(
        ServingSession::<_, ColumnarRelation<f64>>::new(ProbMonoid, &interner, tid.iter().cloned())
            .unwrap(),
        &interner,
        &queries,
        &independent,
        independent_total,
        "columnar(threads=1)",
    );
    check(
        ServingSession::<_, CompressedColumnar<f64>>::new(
            ProbMonoid,
            &interner,
            tid.iter().cloned(),
        )
        .unwrap(),
        &interner,
        &queries,
        &independent,
        independent_total,
        "compressed",
    );
    for t in THREADS {
        check(
            ServingSession::<_, ShardedColumnar<f64>>::with_parallelism(
                ProbMonoid,
                &interner,
                tid.iter().cloned(),
                Parallelism::fine_grained(t),
            )
            .unwrap(),
            &interner,
            &queries,
            &independent,
            independent_total,
            &format!("sharded(threads={t})"),
        );
    }
}

/// A cache hit performs zero monoid ops on the shared prefix: a
/// repeated query costs nothing, and an overlapping query pays only
/// for its unshared suffix.
#[test]
fn cache_hit_performs_zero_ops_on_shared_prefix() {
    let (tid, interner, _) = chain_instance();
    let q_full = hq_query::parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
    let q_sub = hq_query::parse_query("Q() :- E(X,Y)").unwrap();
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    let (_, full_stats) = session.query(&interner, &q_full).unwrap();
    assert_eq!(session.ops_performed(), full_stats.total_ops());
    // Identical query: zero additional ops, identical report.
    let before = session.ops_performed();
    let (_, again) = session.query(&interner, &q_full).unwrap();
    assert_eq!(again, full_stats);
    assert_eq!(session.ops_performed(), before, "full cache hit costs zero");
    // Overlapping query: E's scan and its first fold are shared (zero
    // ops); only the unshared suffix is paid for.
    let current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    let (_, sub_stats) = fresh_encoded(&ProbMonoid, &q_sub, &interner, &current);
    session.query(&interner, &q_sub).unwrap();
    let paid = session.ops_performed() - before;
    assert!(
        paid < sub_stats.total_ops(),
        "shared prefix must be free: paid {paid} of {}",
        sub_stats.total_ops()
    );
}

/// One step of the pinned interleaved serving script.
enum ScriptStep {
    Query(Query),
    Update(Vec<(Fact, f64)>),
}

/// The pinned `|D| = 32k` instance of the acceptance criterion: two
/// 16k-fact relations joining on a 251-value column.
fn pinned_32k() -> (Vec<(Fact, f64)>, Interner) {
    let mut interner = Interner::new();
    let e = interner.intern("E");
    let f = interner.intern("F");
    let mut tid = Vec::with_capacity(32_000);
    for k in 0..16_000i64 {
        tid.push((
            Fact::new(e, Tuple::ints(&[k, k % 251])),
            0.02 + (k % 83) as f64 * 0.01,
        ));
        tid.push((
            Fact::new(f, Tuple::ints(&[k % 251, k])),
            0.98 - (k % 89) as f64 * 0.01,
        ));
    }
    tid.sort_by(|a, b| a.0.cmp(&b.0));
    (tid, interner)
}

/// The pinned interleaved query/update script: the overlapping query
/// batch, then rounds of small update batches each followed by
/// re-serving the dirty pipelines.
fn pinned_script(tid: &[(Fact, f64)]) -> Vec<ScriptStep> {
    let queries: Vec<Query> = [
        "Q() :- E(X,Y), F(Y,Z)",
        "Q() :- E(X,Y)",
        "Q() :- F(Y,Z)",
        "Q() :- E(X,Y), F(Y,Z)",
    ]
    .iter()
    .map(|s| hq_query::parse_query(s).unwrap())
    .collect();
    let mut script: Vec<ScriptStep> = queries.iter().cloned().map(ScriptStep::Query).collect();
    for round in 0..6usize {
        let batch: Vec<(Fact, f64)> = (0..2)
            .map(|j| {
                let (f, _) = &tid[(round * 7919 + j * 131) % tid.len()];
                (f.clone(), 0.05 + ((round * 2 + j) % 89) as f64 / 100.0)
            })
            .collect();
        script.push(ScriptStep::Update(batch));
        script.push(ScriptStep::Query(queries[0].clone()));
        script.push(ScriptStep::Query(queries[1].clone()));
    }
    script
}

/// Drives one session through the script, returning every served
/// `(value, stats)` and the total monoid ops the session executed.
fn drive<R: ServingBackend<Ann = f64>>(
    mut session: ServingSession<ProbMonoid, R>,
    interner: &Interner,
    script: &[ScriptStep],
) -> (Vec<(f64, EngineStats)>, u64) {
    let mut outs = Vec::new();
    for step in script {
        match step {
            ScriptStep::Query(q) => outs.push(session.query(interner, q).unwrap()),
            ScriptStep::Update(batch) => {
                session.update_batch(interner, batch).unwrap();
            }
        }
    }
    let ops = session.ops_performed();
    (outs, ops)
}

/// Acceptance criterion: on the pinned `|D| = 32k` interleaved
/// query/update script, delta-patching the cached intermediates
/// performs **strictly fewer** monoid ops than the drop-and-rebuild
/// path (`patch_fraction = 0`), while every served value and
/// [`EngineStats`] stays bit-identical to fresh evaluation — on
/// map/columnar/sharded at threads 1, 2 and 8.
#[test]
fn delta_patching_beats_rebuild_on_the_pinned_32k_instance() {
    let (tid, interner) = pinned_32k();
    assert_eq!(tid.len(), 32_000);
    let script = pinned_script(&tid);
    // The fresh-evaluation baseline: replay the script against a model
    // state, evaluating each query from scratch.
    let mut current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    let mut expected: Vec<(f64, EngineStats)> = Vec::new();
    for step in &script {
        match step {
            ScriptStep::Query(q) => {
                expected.push(fresh_encoded(&ProbMonoid, q, &interner, &current))
            }
            ScriptStep::Update(batch) => {
                for (f, p) in batch {
                    current.insert(f.clone(), *p);
                }
            }
        }
    }
    let check = |label: &str, outs: &[(f64, EngineStats)]| {
        assert_eq!(outs.len(), expected.len(), "{label}");
        for (i, ((got, stats), (want, want_stats))) in outs.iter().zip(&expected).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "{label}: value at step {i}");
            assert_eq!(stats, want_stats, "{label}: stats at step {i}");
        }
    };
    // One patch/rebuild session pair per backend × thread count; the
    // patching session runs the *default* threshold (the win must not
    // require tuning).
    let run_pair = |label: &str, patched: u64, rebuilt: u64| {
        assert!(
            patched < rebuilt,
            "{label}: patching must perform strictly fewer ops than rebuild \
             ({patched} vs {rebuilt})"
        );
    };
    {
        let patch: ServingSession<ProbMonoid, MapRelation<f64>> =
            ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
        let mut rebuild: ServingSession<ProbMonoid, MapRelation<f64>> =
            ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
        rebuild.set_patch_fraction(0.0);
        let (outs, patched) = drive(patch, &interner, &script);
        check("map", &outs);
        let (outs, rebuilt) = drive(rebuild, &interner, &script);
        check("map(rebuild)", &outs);
        run_pair("map", patched, rebuilt);
    }
    {
        let patch: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
        let mut rebuild: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
        rebuild.set_patch_fraction(0.0);
        let (outs, patched) = drive(patch, &interner, &script);
        check("columnar(threads=1)", &outs);
        let (outs, rebuilt) = drive(rebuild, &interner, &script);
        check("columnar(rebuild)", &outs);
        run_pair("columnar(threads=1)", patched, rebuilt);
    }
    for t in THREADS {
        let patch: ServingSession<ProbMonoid, ShardedColumnar<f64>> =
            ServingSession::with_parallelism(
                ProbMonoid,
                &interner,
                tid.iter().cloned(),
                Parallelism::new(t),
            )
            .unwrap();
        let mut rebuild: ServingSession<ProbMonoid, ShardedColumnar<f64>> =
            ServingSession::with_parallelism(
                ProbMonoid,
                &interner,
                tid.iter().cloned(),
                Parallelism::new(t),
            )
            .unwrap();
        rebuild.set_patch_fraction(0.0);
        let (outs, patched) = drive(patch, &interner, &script);
        check(&format!("sharded(threads={t})"), &outs);
        let (outs, rebuilt) = drive(rebuild, &interner, &script);
        check(&format!("sharded(rebuild,threads={t})"), &outs);
        run_pair(&format!("sharded(threads={t})"), patched, rebuilt);
    }
}

/// Bugfix pin: re-populating a relation that an earlier delete-only
/// batch emptied, with values that were already interned, must not
/// report any dictionary extension — on the serving session *and* on
/// the incremental run.
#[test]
fn repopulating_an_emptied_relation_reports_no_dict_extensions() {
    let (tid, mut interner, _) = chain_instance();
    let g = interner.intern("G");
    let q_e = hq_query::parse_query("Q() :- E(X,Y)").unwrap();
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    session.query(&interner, &q_e).unwrap();
    let warm_ops = session.ops_performed();
    // Declare G with already-interned values, then empty it again.
    let g_fact = Fact::new(g, Tuple::ints(&[1, 2]));
    let out = session.update(&interner, &g_fact, 0.5).unwrap();
    assert!(!out.refresh.dict_extended, "values 1, 2 already interned");
    assert_eq!(out.dict_extensions, 0);
    let out = session.update(&interner, &g_fact, 0.0).unwrap();
    assert_eq!(out.dict_extensions, 0, "delete-only batch extends nothing");
    // Re-populate the (declared but empty) relation: still no
    // extension, and the unrelated warm E pipeline is untouched.
    let out = session
        .update(&interner, &Fact::new(g, Tuple::ints(&[2, 3])), 0.4)
        .unwrap();
    assert!(!out.refresh.dict_extended);
    assert_eq!(out.dict_extensions, 0);
    assert_eq!(out.invalidated, 0, "no cached node reads G");
    session.query(&interner, &q_e).unwrap();
    assert_eq!(
        session.ops_performed(),
        warm_ops,
        "E stayed warm throughout"
    );
    // The incremental maintainer agrees: emptying a query relation and
    // re-inserting interned values pays zero dictionary extensions.
    let q = hq_query::parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
    let mut run: hq_unify::IncrementalRun<ProbMonoid, ColumnarRelation<f64>> =
        hq_unify::IncrementalRun::with_storage(ProbMonoid, &q, &interner, tid.iter().cloned())
            .unwrap();
    let e_facts: Vec<Fact> = tid
        .iter()
        .filter(|(f, _)| interner.resolve(f.rel) == "E")
        .map(|(f, _)| f.clone())
        .collect();
    let empty_e: Vec<(Fact, f64)> = e_facts.iter().map(|f| (f.clone(), 0.0)).collect();
    run.update_batch(&interner, &empty_e).unwrap();
    assert_eq!(run.last_update_stats().dict_extensions, 0);
    run.update(&interner, &e_facts[0], 0.5).unwrap();
    assert_eq!(
        run.last_update_stats().dict_extensions,
        0,
        "re-populating with interned values must not extend"
    );
}

/// Bugfix pin: a novel-domain-value insert no longer clears the node
/// cache — surviving matrices are translated through the old→new code
/// map, so an *unrelated* warm pipeline keeps serving for free.
#[test]
fn unrelated_warm_pipeline_survives_novel_value_insert() {
    let (tid, interner, _) = chain_instance();
    let q_e = hq_query::parse_query("Q() :- E(X,Y)").unwrap();
    let q_f = hq_query::parse_query("Q() :- F(Y,Z)").unwrap();
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    session.set_patch_fraction(f64::INFINITY);
    session.query(&interner, &q_e).unwrap();
    session.query(&interner, &q_f).unwrap();
    let nodes = session.cached_nodes();
    // Values far outside the instance domain: the dictionary extends.
    let e = interner.get("E").unwrap();
    let out = session
        .update(&interner, &Fact::new(e, Tuple::ints(&[9_999, 8_888])), 0.5)
        .unwrap();
    assert!(out.refresh.dict_extended);
    assert_eq!(out.dict_extensions, nodes, "every matrix translated");
    assert_eq!(session.cached_nodes(), nodes, "nothing was dropped");
    // F's pipeline — which never read E — re-serves for free.
    let after_patch = session.ops_performed();
    let mut current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    current.insert(Fact::new(e, Tuple::ints(&[9_999, 8_888])), 0.5);
    let (want, want_stats) = fresh_encoded(&ProbMonoid, &q_f, &interner, &current);
    let (got, stats) = session.query(&interner, &q_f).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());
    assert_eq!(stats, want_stats);
    assert_eq!(session.ops_performed(), after_patch, "F stayed warm");
    // And the dirty E pipeline was patched, not rebuilt: serving it
    // also costs nothing further.
    let (want, want_stats) = fresh_encoded(&ProbMonoid, &q_e, &interner, &current);
    let (got, stats) = session.query(&interner, &q_e).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());
    assert_eq!(stats, want_stats);
    assert_eq!(session.ops_performed(), after_patch, "E was fully patched");
}

/// Spill-on-evict pin: with a tiny cache budget and spilling enabled,
/// evicted compressed nodes round-trip through the temp segment file —
/// after one warm round, alternating between two disjoint pipelines is
/// served *entirely* from reloads (zero further monoid ops), while
/// every answer (value, op counts, support trajectory) stays
/// bit-identical to fresh evaluation.
#[test]
fn spilled_nodes_reload_bit_identical_instead_of_recomputing() {
    let (tid, interner, _) = chain_instance();
    let current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    let q_e = hq_query::parse_query("Q() :- E(X,Y)").unwrap();
    let q_f = hq_query::parse_query("Q() :- F(Y,Z)").unwrap();
    let mut session: ServingSession<ProbMonoid, CompressedColumnar<f64>> =
        ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    assert!(session.set_spill(true), "the f64 carrier is spillable");
    assert!(session.spill_enabled());
    // One cached row at most: each pipeline's eviction pressure pushes
    // the other pipeline's nodes out (and, spilling, onto disk).
    session.set_cache_budget(Some(1));
    let mut after_round = Vec::new();
    for _ in 0..3 {
        for q in [&q_e, &q_f] {
            let (got, stats) = session.query(&interner, q).unwrap();
            let (want, want_stats) = fresh_encoded(&ProbMonoid, q, &interner, &current);
            assert_eq!(got.to_bits(), want.to_bits(), "spilling session on {q}");
            assert_eq!(stats, want_stats, "spilled stats on {q}");
        }
        after_round.push(session.ops_performed());
    }
    assert!(
        session.spill_writes() >= 1,
        "evictions must hit the segment"
    );
    assert!(
        session.spill_reloads() >= 1,
        "re-served queries must come back from disk, not recompute"
    );
    assert!(session.spilled_bytes() > 0);
    assert_eq!(
        after_round[0], after_round[2],
        "after the warm round, reloads perform zero monoid ops \
         (recompute would pay the full pipeline each round)"
    );
    // The spilled bytes stay exact across an update touching them: the
    // stale entries are dropped, not reloaded.
    let e_fact = tid
        .iter()
        .find(|(f, _)| interner.resolve(f.rel) == "E")
        .unwrap()
        .0
        .clone();
    session.update(&interner, &e_fact, 0.123).unwrap();
    let mut current = current;
    current.insert(e_fact, 0.123);
    let (got, stats) = session.query(&interner, &q_e).unwrap();
    let (want, want_stats) = fresh_encoded(&ProbMonoid, &q_e, &interner, &current);
    assert_eq!(got.to_bits(), want.to_bits(), "post-update reload");
    assert_eq!(stats, want_stats);
}

/// Spilling is an opt-in that only the compressed tier with a
/// byte-codable carrier can honour: `set_spill(true)` reports `false`
/// (and stays off) on dense columnar nodes and on heap-carried
/// annotations with no stable byte encoding.
#[test]
fn spill_is_refused_off_the_compressed_tier_and_for_heap_carriers() {
    let (tid, interner, _) = chain_instance();
    let mut col: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    assert!(!col.set_spill(true), "dense columnar nodes never spill");
    assert!(!col.spill_enabled());
    let monoid = hq_monoid::SatCountMonoid::new(tid.len());
    let sat_facts: Vec<(Fact, hq_monoid::SatVec)> =
        tid.iter().map(|(f, _)| (f.clone(), monoid.one())).collect();
    let mut sat: ServingSession<hq_monoid::SatCountMonoid, CompressedColumnar<hq_monoid::SatVec>> =
        ServingSession::new(monoid, &interner, sat_facts).unwrap();
    assert!(
        !sat.set_spill(true),
        "#Sat vectors are heap-carried: compressed nodes hold them but cannot spill them"
    );
    assert!(!sat.spill_enabled());
}

/// Updates touching one relation leave the other relation's cached
/// pipeline warm — re-serving it is free — while the dirty pipeline is
/// delta-patched in place during the update and re-serves without any
/// further recomputation, bit-identical to fresh evaluation.
#[test]
fn update_invalidation_is_scoped_to_touched_relations() {
    let (tid, interner, _) = chain_instance();
    let q_e = hq_query::parse_query("Q() :- E(X,Y)").unwrap();
    let q_f = hq_query::parse_query("Q() :- F(Y,Z)").unwrap();
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    session.set_patch_fraction(f64::INFINITY);
    session.query(&interner, &q_e).unwrap();
    session.query(&interner, &q_f).unwrap();
    let warm = session.ops_performed();
    // Touch E only (existing domain values: the delta-patch path).
    let e_fact = tid
        .iter()
        .find(|(f, _)| interner.resolve(f.rel) == "E")
        .unwrap()
        .0
        .clone();
    let out = session.update(&interner, &e_fact, 0.42).unwrap();
    assert_eq!(out.touched, vec!["E".to_owned()]);
    assert!(!out.refresh.dict_extended);
    assert!(out.patched_scans >= 1, "E's scan stays warm via patching");
    assert!(out.patched_nodes >= 1, "E's folds stay warm via patching");
    assert_eq!(out.invalidated, 0);
    let patch_cost = session.ops_performed() - warm;
    assert!(patch_cost > 0, "the repair itself performs the dirty folds");
    // Both pipelines now re-serve for free: F was never dirty, E was
    // repaired during the update.
    let after_patch = session.ops_performed();
    session.query(&interner, &q_f).unwrap();
    assert_eq!(
        session.ops_performed(),
        after_patch,
        "F's pipeline must stay warm across an E-only update"
    );
    let mut current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    current.insert(e_fact, 0.42);
    let (want, want_stats) = fresh_encoded(&ProbMonoid, &q_e, &interner, &current);
    let (got, stats) = session.query(&interner, &q_e).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());
    assert_eq!(stats, want_stats);
    assert_eq!(
        session.ops_performed(),
        after_patch,
        "the patched E pipeline re-serves without recomputation"
    );
    // And the repair cost a fraction of what the fresh pipeline costs.
    assert!(
        patch_cost < want_stats.total_ops(),
        "patch ({patch_cost} ops) must undercut a fresh evaluation ({})",
        want_stats.total_ops()
    );
}
