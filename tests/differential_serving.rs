//! Differential testing of the multi-query serving session: through
//! arbitrary mixed scripts of (possibly overlapping) queries and
//! update batches — probability drifts, deletions, dynamic inserts
//! with novel domain values — every query served from the shared plan
//! cache must be **indistinguishable** from an independent fresh
//! evaluation of the current state: values bit-for-bit on floats, and
//! the reported [`EngineStats`] (⊕/⊗ op counts *and* support
//! trajectory) equal to the fresh run's — on the ordered-map oracle,
//! the sequential columnar backend, and the sharded backend at thread
//! counts 2 and 8.
//!
//! Non-prop pins: a batch of overlapping queries must perform strictly
//! fewer monoid operations than independent `evaluate_encoded` calls
//! (the acceptance bar for common-subexpression sharing), and a cache
//! hit must perform **zero** monoid operations on the shared prefix.

mod common;

use common::random_instance;
use hq_db::{Database, Fact, Interner, Tuple};
use hq_monoid::{BagMaxMonoid, CountMonoid, ProbMonoid, TwoMonoid};
use hq_query::Query;
use hq_unify::engine::EngineStats;
use hq_unify::{
    evaluate_encoded, evaluate_on, ColumnarRelation, EncodedDb, MapRelation, Parallelism,
    ServingBackend, ServingSession, ShardedColumnar,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Thread counts for the sharded serving sessions.
const THREADS: [usize; 2] = [2, 8];

/// One serving session per backend flavour, all fed the same script.
struct Fleet<M: TwoMonoid> {
    map: ServingSession<M, MapRelation<M::Elem>>,
    columnar: ServingSession<M, ColumnarRelation<M::Elem>>,
    sharded: Vec<ServingSession<M, ShardedColumnar<M::Elem>>>,
}

impl<M: TwoMonoid + Clone> Fleet<M> {
    fn build(monoid: &M, interner: &Interner, facts: &[(Fact, M::Elem)]) -> Self {
        Fleet {
            map: ServingSession::new(monoid.clone(), interner, facts.iter().cloned()).unwrap(),
            columnar: ServingSession::new(monoid.clone(), interner, facts.iter().cloned()).unwrap(),
            sharded: THREADS
                .iter()
                .map(|&t| {
                    ServingSession::with_parallelism(
                        monoid.clone(),
                        interner,
                        facts.iter().cloned(),
                        Parallelism::fine_grained(t),
                    )
                    .unwrap()
                })
                .collect(),
        }
    }

    /// Serves `q` from every session and asserts all agree; returns the
    /// shared `(value, stats)`.
    fn query(&mut self, interner: &Interner, q: &Query) -> (M::Elem, EngineStats) {
        let (want, want_stats) = self.map.query(interner, q).unwrap();
        let (got, stats) = self.columnar.query(interner, q).unwrap();
        assert_eq!(want, got, "columnar session diverged on {q}");
        assert_eq!(want_stats, stats, "columnar stats diverged on {q}");
        for s in &mut self.sharded {
            let (got, stats) = s.query(interner, q).unwrap();
            assert_eq!(want, got, "sharded session diverged on {q}");
            assert_eq!(want_stats, stats, "sharded stats diverged on {q}");
        }
        (want, want_stats)
    }

    fn update_batch(&mut self, interner: &Interner, batch: &[(Fact, M::Elem)]) {
        self.map.update_batch(interner, batch).unwrap();
        self.columnar.update_batch(interner, batch).unwrap();
        for s in &mut self.sharded {
            s.update_batch(interner, batch).unwrap();
        }
    }
}

/// A family of overlapping queries over `q`'s schema: the full query
/// plus every leading atom prefix (removing atoms of a hierarchical
/// query preserves the hierarchy property: each `at(·)` only shrinks),
/// and the full query once more so at least one script entry is a pure
/// cache hit.
fn query_family(q: &Query) -> Vec<Query> {
    let mut family = vec![q.clone()];
    for len in 1..q.atom_count() {
        let atoms: Vec<(String, Vec<String>)> = q.atoms()[..len]
            .iter()
            .map(|a| {
                (
                    a.rel.clone(),
                    a.vars.iter().map(|&v| q.var_name(v).to_owned()).collect(),
                )
            })
            .collect();
        let borrowed: Vec<(&str, Vec<&str>)> = atoms
            .iter()
            .map(|(r, vs)| (r.as_str(), vs.iter().map(String::as_str).collect()))
            .collect();
        let specs: Vec<(&str, &[&str])> =
            borrowed.iter().map(|(r, vs)| (*r, vs.as_slice())).collect();
        family.push(Query::new(&specs).expect("atom subsets stay hierarchical"));
    }
    family.push(q.clone());
    family
}

/// The query's relations as (symbol, arity), for generating updates.
fn query_rels(q: &Query, interner: &Interner) -> Vec<(hq_db::Sym, usize)> {
    q.atoms()
        .iter()
        .filter_map(|a| interner.get(&a.rel).map(|s| (s, a.vars.len())))
        .collect()
}

/// A random update batch over the query relations: drifts, deletions
/// (`None`), and genuinely new facts — half of them carrying domain
/// values outside the original instance (dictionary-extension path).
fn random_batch(
    rng: &mut StdRng,
    facts: &[Fact],
    query_rels: &[(hq_db::Sym, usize)],
    domain: i64,
) -> Vec<(Fact, Option<f64>)> {
    let len = rng.gen_range(1..=3);
    (0..len)
        .map(|_| {
            let novel = rng.gen_bool(0.3) || facts.is_empty();
            let fact = if novel {
                let (rel, arity) = query_rels[rng.gen_range(0..query_rels.len())];
                let hi = if rng.gen_bool(0.5) {
                    domain
                } else {
                    domain * 4 + 7
                };
                let vals: Vec<i64> = (0..arity).map(|_| rng.gen_range(0..=hi)).collect();
                Fact::new(rel, Tuple::ints(&vals))
            } else {
                facts[rng.gen_range(0..facts.len())].clone()
            };
            let weight = if rng.gen_bool(0.25) {
                None // delete
            } else {
                Some(rng.gen_range(0.01..=1.0))
            };
            (fact, weight)
        })
        .collect()
}

/// Applies a batch to the model state the fresh evaluations run from.
fn apply_to_model<K: Clone>(
    current: &mut std::collections::BTreeMap<Fact, K>,
    batch: &[(Fact, Option<K>)],
) {
    for (fact, v) in batch {
        match v {
            None => {
                current.remove(fact);
            }
            Some(k) => {
                current.insert(fact.clone(), k.clone());
            }
        }
    }
}

/// Fresh `evaluate_encoded` over the model state (database + encoding
/// rebuilt from scratch) — the independent baseline the acceptance
/// criterion names.
fn fresh_encoded<M: TwoMonoid>(
    monoid: &M,
    q: &Query,
    interner: &Interner,
    current: &std::collections::BTreeMap<Fact, M::Elem>,
) -> (M::Elem, EngineStats) {
    let mut db = Database::new();
    for f in current.keys() {
        db.insert(f.clone());
    }
    let enc = EncodedDb::new(&db);
    evaluate_encoded(
        Parallelism::default(),
        monoid,
        q,
        interner,
        &db,
        &enc,
        |sym, t| current[&Fact::new(sym, t.clone())].clone(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Probability monoid: a mixed script of overlapping queries and
    /// update batches; every served answer bit-identical (value, op
    /// counts, support trajectory) to fresh evaluation, on every
    /// backend and thread count.
    #[test]
    fn prob_serving_matches_fresh_evaluation(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, f64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(0.01..=1.0)))
            .collect();
        let tid: Vec<(Fact, f64)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&ProbMonoid, &inst.interner, &tid);
        for round in 0..3 {
            for q in &family {
                let (got, stats) = fleet.query(&inst.interner, q);
                let list: Vec<(Fact, f64)> = current.clone().into_iter().collect();
                for backend in hq_unify::Backend::ALL {
                    let (fresh, fresh_stats) =
                        evaluate_on(backend, &ProbMonoid, q, &inst.interner, list.clone())
                            .unwrap();
                    prop_assert_eq!(
                        got.to_bits(), fresh.to_bits(),
                        "{} served {} vs fresh {} on {} (round {})",
                        backend, got, fresh, q, round
                    );
                    prop_assert_eq!(&stats, &fresh_stats, "stats diverged on {}", q);
                }
                let (fresh, fresh_stats) = fresh_encoded(&ProbMonoid, q, &inst.interner, &current);
                prop_assert_eq!(got.to_bits(), fresh.to_bits(), "encoded path on {}", q);
                prop_assert_eq!(&stats, &fresh_stats, "encoded stats on {}", q);
            }
            let batch = random_batch(&mut inst.rng, &facts, &rels, 3);
            apply_to_model(&mut current, &batch);
            let writes: Vec<(Fact, f64)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.unwrap_or(0.0)))
                .collect();
            fleet.update_batch(&inst.interner, &writes);
        }
    }

    /// Counting semiring (annihilating ⊗): same contract.
    #[test]
    fn count_serving_matches_fresh_evaluation(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 4, 5, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, u64> = facts
            .iter()
            .map(|f| (f.clone(), inst.rng.gen_range(1u64..=3)))
            .collect();
        let list: Vec<(Fact, u64)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&CountMonoid, &inst.interner, &list);
        for _ in 0..3 {
            for q in &family {
                let (got, stats) = fleet.query(&inst.interner, q);
                let (fresh, fresh_stats) = fresh_encoded(&CountMonoid, q, &inst.interner, &current);
                prop_assert_eq!(got, fresh, "on {}", q);
                prop_assert_eq!(&stats, &fresh_stats, "stats diverged on {}", q);
            }
            let batch: Vec<(Fact, Option<u64>)> = random_batch(&mut inst.rng, &facts, &rels, 3)
                .into_iter()
                .map(|(f, w)| (f, w.map(|p| 1 + (p * 3.0) as u64)))
                .collect();
            apply_to_model(&mut current, &batch);
            let writes: Vec<(Fact, u64)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.unwrap_or(0)))
                .collect();
            fleet.update_batch(&inst.interner, &writes);
        }
    }

    /// Bag-Set Maximization (non-annihilating ⊗ with 0-filled merges):
    /// ψ-class scripts against fresh evaluation.
    #[test]
    fn bagmax_serving_matches_fresh_evaluation(seed in 0u64..1_000_000) {
        let mut inst = random_instance(seed, 4, 3, 4, 3);
        let rels = query_rels(&inst.query, &inst.interner);
        if rels.is_empty() {
            return Ok(());
        }
        let m = BagMaxMonoid::new(3);
        let family = query_family(&inst.query);
        let facts = inst.database.facts();
        let mut current: std::collections::BTreeMap<Fact, _> = facts
            .iter()
            .map(|f| {
                let k = if inst.rng.gen_bool(0.5) { m.one() } else { m.star() };
                (f.clone(), k)
            })
            .collect();
        let list: Vec<(Fact, _)> = current.clone().into_iter().collect();
        let mut fleet = Fleet::build(&m, &inst.interner, &list);
        for _ in 0..2 {
            for q in &family {
                let (got, stats) = fleet.query(&inst.interner, q);
                let (fresh, fresh_stats) = fresh_encoded(&m, q, &inst.interner, &current);
                prop_assert_eq!(&got, &fresh, "on {}", q);
                prop_assert_eq!(&stats, &fresh_stats, "stats diverged on {}", q);
            }
            let batch: Vec<(Fact, Option<_>)> = random_batch(&mut inst.rng, &facts, &rels, 3)
                .into_iter()
                .map(|(f, w)| (f, w.map(|p| if p < 0.5 { m.one() } else { m.star() })))
                .collect();
            apply_to_model(&mut current, &batch);
            let writes: Vec<(Fact, _)> = batch
                .iter()
                .map(|(f, v)| (f.clone(), v.clone().unwrap_or_else(|| m.zero())))
                .collect();
            fleet.update_batch(&inst.interner, &writes);
        }
    }
}

/// The chain instance every non-prop pin below uses: large enough that
/// every query performs real monoid work.
fn chain_instance() -> (Vec<(Fact, f64)>, Interner, Vec<Query>) {
    let mut interner = Interner::new();
    let e = interner.intern("E");
    let f = interner.intern("F");
    let mut tid = Vec::new();
    for k in 0..48i64 {
        tid.push((
            Fact::new(e, Tuple::ints(&[k / 3, k % 7])),
            0.05 + 0.01 * k as f64,
        ));
        tid.push((
            Fact::new(f, Tuple::ints(&[k % 7, k / 2])),
            0.9 - 0.01 * k as f64,
        ));
    }
    tid.sort_by(|a, b| a.0.cmp(&b.0));
    tid.dedup_by(|a, b| a.0 == b.0);
    let queries: Vec<Query> = [
        "Q() :- E(X,Y), F(Y,Z)",
        "Q() :- E(X,Y)",
        "Q() :- F(Y,Z)",
        "Q() :- E(X,Y), F(Y,Z)",
    ]
    .iter()
    .map(|s| hq_query::parse_query(s).unwrap())
    .collect();
    (tid, interner, queries)
}

/// Acceptance criterion: a session serving N ≥ 4 overlapping queries
/// performs strictly fewer total monoid ops than N independent
/// `evaluate_encoded` calls, while every query's value and stats are
/// bit-identical to its independent run — on map/columnar/sharded ×
/// threads {1, 2, 8}.
#[test]
fn shared_serving_beats_independent_evaluation_on_every_backend() {
    let (tid, interner, queries) = chain_instance();
    let current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    // Independent baseline: one evaluate_encoded per query (per the
    // acceptance criterion), plus the map oracle for value checks.
    let mut independent: Vec<(f64, EngineStats)> = Vec::new();
    let mut independent_total = 0u64;
    for q in &queries {
        let (v, s) = fresh_encoded(&ProbMonoid, q, &interner, &current);
        independent_total += s.total_ops();
        independent.push((v, s));
    }
    fn check<R: ServingBackend<Ann = f64>>(
        mut session: ServingSession<ProbMonoid, R>,
        interner: &Interner,
        queries: &[Query],
        independent: &[(f64, EngineStats)],
        independent_total: u64,
        label: &str,
    ) {
        for (q, (want, want_stats)) in queries.iter().zip(independent) {
            let (got, stats) = session.query(interner, q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "{label}: value on {q}");
            assert_eq!(&stats, want_stats, "{label}: stats on {q}");
        }
        assert!(
            session.ops_performed() < independent_total,
            "{label}: sharing must strictly beat independent evaluation \
             (performed {} vs {})",
            session.ops_performed(),
            independent_total
        );
    }
    check(
        ServingSession::<_, MapRelation<f64>>::new(ProbMonoid, &interner, tid.iter().cloned())
            .unwrap(),
        &interner,
        &queries,
        &independent,
        independent_total,
        "map",
    );
    check(
        ServingSession::<_, ColumnarRelation<f64>>::new(ProbMonoid, &interner, tid.iter().cloned())
            .unwrap(),
        &interner,
        &queries,
        &independent,
        independent_total,
        "columnar(threads=1)",
    );
    for t in THREADS {
        check(
            ServingSession::<_, ShardedColumnar<f64>>::with_parallelism(
                ProbMonoid,
                &interner,
                tid.iter().cloned(),
                Parallelism::fine_grained(t),
            )
            .unwrap(),
            &interner,
            &queries,
            &independent,
            independent_total,
            &format!("sharded(threads={t})"),
        );
    }
}

/// A cache hit performs zero monoid ops on the shared prefix: a
/// repeated query costs nothing, and an overlapping query pays only
/// for its unshared suffix.
#[test]
fn cache_hit_performs_zero_ops_on_shared_prefix() {
    let (tid, interner, _) = chain_instance();
    let q_full = hq_query::parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
    let q_sub = hq_query::parse_query("Q() :- E(X,Y)").unwrap();
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    let (_, full_stats) = session.query(&interner, &q_full).unwrap();
    assert_eq!(session.ops_performed(), full_stats.total_ops());
    // Identical query: zero additional ops, identical report.
    let before = session.ops_performed();
    let (_, again) = session.query(&interner, &q_full).unwrap();
    assert_eq!(again, full_stats);
    assert_eq!(session.ops_performed(), before, "full cache hit costs zero");
    // Overlapping query: E's scan and its first fold are shared (zero
    // ops); only the unshared suffix is paid for.
    let current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    let (_, sub_stats) = fresh_encoded(&ProbMonoid, &q_sub, &interner, &current);
    session.query(&interner, &q_sub).unwrap();
    let paid = session.ops_performed() - before;
    assert!(
        paid < sub_stats.total_ops(),
        "shared prefix must be free: paid {paid} of {}",
        sub_stats.total_ops()
    );
}

/// Updates touching one relation leave the other relation's cached
/// pipeline warm — re-serving it is free — while the dirty pipeline is
/// recomputed and stays bit-identical to fresh evaluation.
#[test]
fn update_invalidation_is_scoped_to_touched_relations() {
    let (tid, interner, _) = chain_instance();
    let q_e = hq_query::parse_query("Q() :- E(X,Y)").unwrap();
    let q_f = hq_query::parse_query("Q() :- F(Y,Z)").unwrap();
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, tid.iter().cloned()).unwrap();
    session.query(&interner, &q_e).unwrap();
    session.query(&interner, &q_f).unwrap();
    let before = session.ops_performed();
    // Touch E only (existing domain values: the delta-patch path).
    let e_fact = tid
        .iter()
        .find(|(f, _)| interner.resolve(f.rel) == "E")
        .unwrap()
        .0
        .clone();
    let out = session.update(&interner, &e_fact, 0.42).unwrap();
    assert_eq!(out.touched, vec!["E".to_owned()]);
    assert!(!out.refresh.dict_extended);
    assert!(out.patched_scans >= 1, "E's scan stays warm via patching");
    session.query(&interner, &q_f).unwrap();
    assert_eq!(
        session.ops_performed(),
        before,
        "F's pipeline must stay warm across an E-only update"
    );
    let mut current: std::collections::BTreeMap<Fact, f64> = tid.iter().cloned().collect();
    current.insert(e_fact, 0.42);
    let (want, want_stats) = fresh_encoded(&ProbMonoid, &q_e, &interner, &current);
    let (got, stats) = session.query(&interner, &q_e).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());
    assert_eq!(stats, want_stats);
}
