#!/usr/bin/env python3
"""Bench regression gate: working-tree BENCH_*.json vs git HEAD.

Flow: regenerate the summaries on real hardware (`cargo bench -p
hq-bench` without the CI env var, so `write_bench_summary` writes to
the workspace root), then run this script. Every datapoint — keyed by
(bench, workload, threads) — whose fresh mean_ns exceeds the HEAD
baseline by more than the threshold is reported; any such slowdown
fails the gate.

New files and new datapoints are reported but never fail the gate
(benches gain workloads as they evolve). A datapoint present in the
HEAD baseline but **missing from the fresh run is a hard failure**: a
vanished (workload, threads) point means the bench silently stopped
measuring something it used to, which is exactly the regression the
gate exists to catch.

Under HQ_BENCH_SMOKE the comparison still runs and prints (so CI
exercises the plumbing), but the exit code is forced to 0: smoke-sized
numbers say nothing about real regressions, and CI hardware is not the
hardware the baselines were recorded on.

Stdlib only; exit 0 = gate passed (or advisory mode), 1 = regression,
2 = usage/environment error.
"""

import fnmatch
import glob
import json
import math
import os
import subprocess
import sys

THRESHOLD = float(os.environ.get("HQ_BENCH_GATE_THRESHOLD", "1.25"))

# Per-workload tolerance overrides: (bench name, workload glob,
# threshold). First match wins; datapoints with no match use the
# global THRESHOLD. Multi-client serving rounds spawn OS threads per
# measured round, so their wall clock carries scheduler noise that the
# single-thread kernel benches do not — hold them to a looser bar
# rather than letting timer jitter fail the gate.
OVERRIDES = [
    ("server_throughput", "*", 1.60),
    # Grouped-commit rounds spawn c writer threads per measured round
    # and their group sizes depend on scheduler interleaving, so the
    # wall clock is noisier still. The overlap_* counter datapoints are
    # deterministic and effectively gate at 1.0x regardless of the bar.
    ("write_throughput", "*", 1.60),
    # The sharded fixpoint build constructs a whole serving session
    # (encode + materialise + pool dispatch) per iteration, so its wall
    # clock carries the same thread-spawn noise as the server rounds.
    ("recursive_scaling", "fix_build_sharded_*", 1.60),
]


def threshold_for(bench, workload):
    """(threshold, override?) for one datapoint."""
    for b, pattern, t in OVERRIDES:
        if b == bench and fnmatch.fnmatch(workload or "", pattern):
            return t, True
    return THRESHOLD, False


def load_head(path):
    """The checked-in (git HEAD) version of `path`, or None if new."""
    proc = subprocess.run(
        ["git", "show", f"HEAD:{path}"],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def datapoints(doc):
    """{(workload, threads): mean_ns} for one summary document."""
    out = {}
    for e in doc.get("entries", []):
        mean = e.get("mean_ns")
        if isinstance(mean, (int, float)) and math.isfinite(mean) and mean > 0:
            out[(e.get("workload"), e.get("threads"))] = float(mean)
    return out


def main():
    root = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        check=False,
    )
    if root.returncode != 0:
        print("bench_gate: not inside a git repository", file=sys.stderr)
        return 2
    os.chdir(root.stdout.strip())

    files = sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("bench_gate: no BENCH_*.json summaries found", file=sys.stderr)
        return 2

    regressions = []
    vanished = []
    for path in files:
        with open(path) as f:
            fresh = json.load(f)
        base = load_head(path)
        if base is None:
            print(f"{path}: new summary (no HEAD baseline) — skipped")
            continue
        fresh_points = datapoints(fresh)
        base_points = datapoints(base)
        bench = fresh.get("bench", "")
        compared = 0
        overridden = set()
        for key, base_ns in sorted(base_points.items()):
            if key not in fresh_points:
                # A baseline datapoint the fresh run no longer measures
                # is a hard failure, not a skip: silently dropped
                # coverage would otherwise pass the gate forever.
                vanished.append((path, key))
                continue
            compared += 1
            bar, is_override = threshold_for(bench, key[0])
            if is_override:
                overridden.add(bar)
            ratio = fresh_points[key] / base_ns
            if ratio > bar:
                regressions.append((path, key, base_ns, fresh_points[key], ratio, bar))
        extra = set(fresh_points) - set(base_points)
        note = f", {len(extra)} new" if extra else ""
        if overridden:
            bars = ", ".join(f"{b:.2f}x" for b in sorted(overridden))
            note += f" (tolerance override: {bars})"
        print(f"{path}: {compared} datapoints compared{note}")

    if vanished:
        print("\nbaseline datapoints missing from the fresh run:")
        for path, (workload, threads) in vanished:
            print(f"  {path} {workload} (threads={threads})")
    if regressions:
        print("\nslowdowns beyond their threshold:")
        for path, (workload, threads), base_ns, fresh_ns, ratio, bar in regressions:
            print(
                f"  {path} {workload} (threads={threads}): "
                f"{base_ns / 1e6:.3f} -> {fresh_ns / 1e6:.3f} ms "
                f"({ratio:.2f}x > {bar:.2f}x)"
            )

    if os.environ.get("HQ_BENCH_SMOKE"):
        print("\nbench_gate: HQ_BENCH_SMOKE set — advisory only, exiting 0")
        return 0
    if regressions or vanished:
        return 1
    print("\nbench_gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
